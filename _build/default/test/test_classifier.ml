module H = Apple_classifier.Header
module P = Apple_classifier.Predicate
module A = Apple_classifier.Atoms
module Pfx = Apple_classifier.Prefix_split
module CH = Apple_classifier.Consistent_hash

let packet ?(src = "10.0.0.1") ?(dst = "192.168.1.1") ?(proto = 6)
    ?(sport = 1234) ?(dport = 80) () =
  {
    H.src_ip = H.ip_of_string src;
    dst_ip = H.ip_of_string dst;
    proto;
    src_port = sport;
    dst_port = dport;
  }

let test_ip_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (H.string_of_ip (H.ip_of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.1.2.3"; "192.168.0.1" ]

let test_ip_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try
           ignore (H.ip_of_string s);
           false
         with Invalid_argument _ -> true))
    [ "10.0.0"; "10.0.0.256"; "a.b.c.d"; "" ]

let test_packet_bits () =
  let p = packet ~src:"128.0.0.0" () in
  Alcotest.(check bool) "msb of src" true (H.packet_bit p 0);
  Alcotest.(check bool) "next bit clear" false (H.packet_bit p 1)

let test_prefix_match () =
  let e = P.env () in
  let pred = P.src_prefix e "10.1.0.0" 16 in
  Alcotest.(check bool) "inside" true (P.matches pred (packet ~src:"10.1.200.3" ()));
  Alcotest.(check bool) "outside" false (P.matches pred (packet ~src:"10.2.0.1" ()))

let test_zero_length_prefix () =
  let e = P.env () in
  let pred = P.src_prefix e "1.2.3.4" 0 in
  Alcotest.(check bool) "matches everything" true (P.equal pred (P.always e))

let test_proto_and_ports () =
  let e = P.env () in
  let web = P.(proto e 6 &&& dst_port e 80) in
  Alcotest.(check bool) "tcp port 80" true (P.matches web (packet ()));
  Alcotest.(check bool) "udp rejected" false (P.matches web (packet ~proto:17 ()));
  Alcotest.(check bool) "port 81 rejected" false (P.matches web (packet ~dport:81 ()))

let test_port_range () =
  let e = P.env () in
  let range = P.dst_port_range e 1000 2000 in
  let member v = P.matches range (packet ~dport:v ()) in
  Alcotest.(check bool) "low edge" true (member 1000);
  Alcotest.(check bool) "high edge" true (member 2000);
  Alcotest.(check bool) "inside" true (member 1500);
  Alcotest.(check bool) "below" false (member 999);
  Alcotest.(check bool) "above" false (member 2001)

let test_port_range_exhaustive () =
  let e = P.env () in
  let lo = 123 and hi = 4567 in
  let range = P.src_port_range e lo hi in
  (* fraction of space must equal range size / 2^16 *)
  let expected = float_of_int (hi - lo + 1) /. 65536.0 in
  Alcotest.(check (float 1e-12)) "exact fraction" expected (P.fraction_of_space range)

let test_boolean_algebra () =
  let e = P.env () in
  let a = P.src_prefix e "10.0.0.0" 8 in
  let b = P.dst_prefix e "192.168.0.0" 16 in
  Alcotest.(check bool) "a - b subset a" true (P.subset (P.diff a b) a);
  Alcotest.(check bool) "a & b subset a" true (P.subset P.(a &&& b) a);
  Alcotest.(check bool) "a subset a | b" true (P.subset a P.(a ||| b));
  Alcotest.(check bool) "a & ~a empty" true (P.is_empty P.(a &&& neg a))

let test_witness () =
  let e = P.env () in
  let pred = P.(src_prefix e "10.7.0.0" 16 &&& proto e 17) in
  match P.witness pred with
  | None -> Alcotest.fail "expected witness"
  | Some p ->
      Alcotest.(check bool) "witness matches" true (P.matches pred p);
      Alcotest.(check int) "witness proto" 17 p.H.proto

let test_atoms_partition () =
  let e = P.env () in
  let preds =
    [
      P.src_prefix e "10.0.0.0" 8;
      P.src_prefix e "10.1.0.0" 16;
      P.dst_port e 80;
    ]
  in
  let atoms = A.compute e preds in
  (* pairwise disjoint *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "disjoint" true (P.is_empty P.(a &&& b)))
        atoms)
    atoms;
  (* cover the space *)
  let union = List.fold_left (fun acc a -> P.(acc ||| a)) (P.never e) atoms in
  Alcotest.(check bool) "covers" true (P.equal union (P.always e));
  (* every predicate decomposes *)
  List.iter (fun p -> ignore (A.decompose p atoms)) preds

let test_atoms_decompose_exact () =
  let e = P.env () in
  let a = P.src_prefix e "10.0.0.0" 8 in
  let b = P.dst_port e 443 in
  let atoms = A.compute e [ a; b ] in
  let indices = A.decompose a atoms in
  (* union of chosen atoms equals a *)
  let union =
    List.fold_left
      (fun acc i -> P.(acc ||| List.nth atoms i))
      (P.never e) indices
  in
  Alcotest.(check bool) "reconstructs" true (P.equal union a)

let test_atoms_same_atom () =
  let e = P.env () in
  let atoms = A.compute e [ P.src_prefix e "10.0.0.0" 8 ] in
  Alcotest.(check bool) "same block" true
    (A.same_atom atoms (packet ~src:"10.1.1.1" ()) (packet ~src:"10.9.9.9" ()));
  Alcotest.(check bool) "different blocks" false
    (A.same_atom atoms (packet ~src:"10.1.1.1" ()) (packet ~src:"11.1.1.1" ()))

(* ---- prefix splitting ---- *)

let test_prefix_parse () =
  let p = Pfx.prefix_of_string "10.1.2.128/25" in
  Alcotest.(check int) "len" 25 p.Pfx.len;
  Alcotest.(check string) "addr normalized" "10.1.2.128" (H.string_of_ip p.Pfx.addr);
  let q = Pfx.prefix_of_string "10.1.2.129/25" in
  Alcotest.(check string) "low bits cleared" "10.1.2.128" (H.string_of_ip q.Pfx.addr)

let test_split_half () =
  let base = Pfx.prefix_of_string "10.0.0.0/24" in
  let split = Pfx.split ~base ~weights:[| 0.5; 0.5 |] ~depth:6 in
  Alcotest.(check int) "one prefix each" 2 (Pfx.rule_count split);
  let rw = Pfx.realized_weights split ~base in
  Alcotest.(check (float 1e-9)) "first half" 0.5 rw.(0);
  Alcotest.(check (float 1e-9)) "second half" 0.5 rw.(1)

let test_split_partition_property () =
  let base = Pfx.prefix_of_string "10.0.0.0/24" in
  let split = Pfx.split ~base ~weights:[| 0.7; 0.2; 0.1 |] ~depth:6 in
  (* Every address in the block is owned by exactly one sub-class. *)
  for a = 0 to 255 do
    let addr = base.Pfx.addr + a in
    let owners =
      Array.to_list split
      |> List.filteri (fun _ pfxs -> List.exists (fun p -> Pfx.member p addr) pfxs)
    in
    Alcotest.(check int) "single owner" 1 (List.length owners)
  done

let prop_split_partition =
  QCheck.Test.make ~name:"prefix split partitions the block" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 8) (float_range 0.01 1.0))
    (fun raw ->
      let total = List.fold_left ( +. ) 0.0 raw in
      let weights = Array.of_list (List.map (fun w -> w /. total) raw) in
      let base = Pfx.prefix_of_string "10.0.0.0/24" in
      let split = Pfx.split ~base ~weights ~depth:6 in
      let ok = ref true in
      for a = 0 to 255 do
        let addr = base.Pfx.addr + a in
        let owners =
          Array.fold_left
            (fun acc pfxs ->
              if List.exists (fun p -> Pfx.member p addr) pfxs then acc + 1 else acc)
            0 split
        in
        if owners <> 1 then ok := false
      done;
      !ok)

let prop_split_weights_close =
  QCheck.Test.make ~name:"realized weights approximate requests" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range 0.05 1.0))
    (fun raw ->
      let total = List.fold_left ( +. ) 0.0 raw in
      let weights = Array.of_list (List.map (fun w -> w /. total) raw) in
      let base = Pfx.prefix_of_string "10.0.0.0/24" in
      let depth = 6 in
      let split = Pfx.split ~base ~weights ~depth in
      let realized = Pfx.realized_weights split ~base in
      let quantum = 1.0 /. float_of_int (1 lsl depth) in
      Array.for_all2
        (fun r w -> abs_float (r -. w) <= (float_of_int (Array.length weights) *. quantum) +. 1e-9)
        realized weights)

(* ---- consistent hashing ---- *)

let test_chash_deterministic () =
  let t = CH.create ~weights:[| 0.5; 0.5 |] in
  let p = packet () in
  Alcotest.(check int) "same packet same bucket" (CH.assign t p) (CH.assign t p)

let test_chash_proportional () =
  let t = CH.create ~weights:[| 0.25; 0.75 |] in
  let hits = [| 0; 0 |] in
  for i = 0 to 9999 do
    let p = packet ~src:(Printf.sprintf "10.%d.%d.%d" (i mod 256) (i / 256) 1) () in
    let b = CH.assign t p in
    hits.(b) <- hits.(b) + 1
  done;
  let frac = float_of_int hits.(1) /. 10_000.0 in
  Alcotest.(check bool) "about 75%" true (frac > 0.72 && frac < 0.78)

let test_chash_point_boundaries () =
  let t = CH.create ~weights:[| 0.5; 0.5 |] in
  Alcotest.(check int) "0 -> first" 0 (CH.assign_point t 0.0);
  Alcotest.(check int) "0.49 -> first" 0 (CH.assign_point t 0.49);
  Alcotest.(check int) "0.51 -> second" 1 (CH.assign_point t 0.51);
  Alcotest.(check int) "0.999 -> second" 1 (CH.assign_point t 0.999)

let test_chash_reweight_stability () =
  (* Shrinking one interval only moves flows whose point crossed the
     boundary. *)
  let t1 = CH.create ~weights:[| 0.5; 0.5 |] in
  let t2 = CH.reweight t1 [| 0.4; 0.6 |] in
  let moved = ref 0 and total = 10_000 in
  for i = 0 to total - 1 do
    let x = float_of_int i /. float_of_int total in
    if CH.assign_point t1 x <> CH.assign_point t2 x then incr moved
  done;
  Alcotest.(check bool) "moved about 10%" true
    (let f = float_of_int !moved /. float_of_int total in
     f > 0.08 && f < 0.12)

let test_chash_rejects_bad_weights () =
  Alcotest.(check bool) "zero total rejected" true
    (try
       ignore (CH.create ~weights:[| 0.0; 0.0 |]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "ip roundtrip" `Quick test_ip_roundtrip;
    Alcotest.test_case "ip invalid" `Quick test_ip_invalid;
    Alcotest.test_case "packet bits" `Quick test_packet_bits;
    Alcotest.test_case "prefix match" `Quick test_prefix_match;
    Alcotest.test_case "zero-length prefix" `Quick test_zero_length_prefix;
    Alcotest.test_case "proto and ports" `Quick test_proto_and_ports;
    Alcotest.test_case "port range edges" `Quick test_port_range;
    Alcotest.test_case "port range fraction" `Quick test_port_range_exhaustive;
    Alcotest.test_case "boolean algebra" `Quick test_boolean_algebra;
    Alcotest.test_case "witness" `Quick test_witness;
    Alcotest.test_case "atoms partition" `Quick test_atoms_partition;
    Alcotest.test_case "atoms decompose" `Quick test_atoms_decompose_exact;
    Alcotest.test_case "atoms same_atom" `Quick test_atoms_same_atom;
    Alcotest.test_case "prefix parse" `Quick test_prefix_parse;
    Alcotest.test_case "split half" `Quick test_split_half;
    Alcotest.test_case "split partition" `Quick test_split_partition_property;
    QCheck_alcotest.to_alcotest prop_split_partition;
    QCheck_alcotest.to_alcotest prop_split_weights_close;
    Alcotest.test_case "chash deterministic" `Quick test_chash_deterministic;
    Alcotest.test_case "chash proportional" `Quick test_chash_proportional;
    Alcotest.test_case "chash boundaries" `Quick test_chash_point_boundaries;
    Alcotest.test_case "chash reweight stability" `Quick test_chash_reweight_stability;
    Alcotest.test_case "chash bad weights" `Quick test_chash_rejects_bad_weights;
  ]
