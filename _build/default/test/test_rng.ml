module Rng = Apple_prelude.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.bits64 a = Rng.bits64 b)

let test_copy_independence () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  let x = Rng.bits64 a in
  let y = Rng.bits64 b in
  Alcotest.(check int64) "copy replays" x y;
  ignore (Rng.bits64 a);
  let x2 = Rng.bits64 a and y2 = Rng.bits64 b in
  Alcotest.(check bool) "then diverges after unequal draws" false (x2 = y2)

let test_split () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  Alcotest.(check bool) "child differs from parent stream" false
    (Rng.bits64 child = Rng.bits64 a)

let test_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_uniform_range () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_uniform_mean () =
  let rng = Rng.create 5 in
  let xs = Array.init 20_000 (fun _ -> Rng.uniform rng) in
  let m = Apple_prelude.Stats.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (m -. 0.5) < 0.02)

let test_gaussian_moments () =
  let rng = Rng.create 6 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng ~mu:3.0 ~sigma:2.0) in
  let m = Apple_prelude.Stats.mean xs in
  let sd = Apple_prelude.Stats.stddev xs in
  Alcotest.(check bool) "mean near 3" true (abs_float (m -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (abs_float (sd -. 2.0) < 0.1)

let test_exponential_mean () =
  let rng = Rng.create 8 in
  let xs = Array.init 20_000 (fun _ -> Rng.exponential rng ~rate:4.0) in
  let m = Apple_prelude.Stats.mean xs in
  Alcotest.(check bool) "mean near 1/4" true (abs_float (m -. 0.25) < 0.02)

let test_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_sample_weighted () =
  let rng = Rng.create 10 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.sample_weighted rng [ ("a", 1.0); ("b", 3.0) ] in
    Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  let b = float_of_int (Hashtbl.find counts "b") in
  Alcotest.(check bool) "weight-proportional" true (b /. 10_000.0 > 0.70 && b /. 10_000.0 < 0.80)

let test_pareto_support () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.pareto rng ~shape:1.5 ~scale:2.0 in
    Alcotest.(check bool) "at least scale" true (v >= 2.0)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independence" `Quick test_copy_independence;
    Alcotest.test_case "split" `Quick test_split;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "weighted sampling" `Quick test_sample_weighted;
    Alcotest.test_case "pareto support" `Quick test_pareto_support;
  ]
