(* Command-line front-end: run any paper experiment, solve a placement for
   one topology, or replay traffic with fast failover. *)

module C = Apple_core
module B = Apple_topology.Builders
module Tr = Apple_traffic
module Rng = Apple_prelude.Rng
module T = Apple_telemetry.Telemetry
module V = Apple_verify.Verify
module Obs = Apple_obs.Counters
module Flight = Apple_obs.Flight
module Poller = Apple_obs.Poller
module Provenance = Apple_obs.Provenance
module Top = Apple_obs.Top
module Walk = Apple_dataplane.Walk
module Dp = Apple_dataplane.Compiled
module PS = Apple_packetsim.Packet_sim
module I = Apple_vnf.Instance
module Ch = Apple_chaos
module Sk = Apple_soak.Soak
module Sl = Apple_slice
module Trc = Apple_trace.Trace
module Paths = Apple_prelude.Paths

open Cmdliner

(* --- telemetry options (shared by every subcommand) ----------------- *)

let metrics_arg =
  let doc =
    "Enable telemetry and print a metrics report (counters, per-phase span \
     timings, pool utilization, event journal) after the command, in the \
     given $(docv): $(b,text), $(b,json) (JSON-lines) or $(b,prom) \
     (Prometheus text format)."
  in
  let env = Cmd.Env.info "APPLE_METRICS" ~doc:"Same as $(b,--metrics)." in
  Arg.(
    value
    & opt (some (enum [ ("text", T.Text); ("json", T.Json); ("prom", T.Prom) ])) None
    & info [ "metrics" ] ~docv:"FORMAT" ~env ~doc)

let metrics_out_arg =
  let doc =
    "Write the metrics report to $(docv) instead of stdout.  Implies \
     $(b,--metrics) (text format unless one was given) — handy for CI \
     artifact collection."
  in
  let env = Cmd.Env.info "APPLE_METRICS_OUT" ~doc:"Same as $(b,--metrics-out)." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~env ~doc)

(* Run [f] with telemetry enabled when a report was requested, then emit
   the report — to stdout, or to [--metrics-out FILE] — also when [f]
   fails, so a crashed run still shows what the pipeline did up to that
   point. *)
let with_metrics metrics out f =
  match (metrics, out) with
  | None, None -> f ()
  | fmt, out ->
      let fmt = Option.value ~default:T.Text fmt in
      T.set_enabled true;
      let emit () =
        let report = T.render fmt in
        match out with
        | None -> print_string report
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc report)
      in
      Fun.protect ~finally:emit f

(* --- dataplane engine option (solve / chaos / soak / slice) --------- *)

let dataplane_arg =
  let doc =
    "Dataplane engine for packet walks: $(b,interp) interprets each \
     lookup over the priority-sorted rule list (the reference \
     semantics), $(b,compiled) dispatches through per-switch compiled \
     tables (tag-keyed dispatch with BDD prefix guards).  Results, \
     counters and flight events are byte-identical; compiled is the \
     fast path for packet-level runs."
  in
  let env = Cmd.Env.info "APPLE_DATAPLANE" ~doc:"Same as $(b,--dataplane)." in
  Arg.(
    value
    & opt (enum [ ("interp", Dp.Interp); ("compiled", Dp.Compiled) ]) Dp.Interp
    & info [ "dataplane" ] ~docv:"ENGINE" ~env ~doc)

(* Run [f] under the chosen dataplane engine, restoring the previous
   mode afterwards so library defaults never leak across commands. *)
let with_dataplane mode f =
  let saved = Dp.mode () in
  Dp.set_mode mode;
  Fun.protect ~finally:(fun () -> Dp.set_mode saved) f

(* --- causal tracing options (solve / chaos / soak / slice / profile) - *)

let trace_out_arg =
  let doc =
    "Record a causal trace of the run and write it to $(docv) as Chrome \
     trace-event JSON (schema $(b,apple-trace/1)) — load it in Perfetto \
     (ui.perfetto.dev), speedscope or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_mode_arg =
  let doc =
    "Trace timestamp source: $(b,sim) renders on the deterministic \
     simulation clock (wall-time, domain and allocation fields zeroed; \
     byte-identical across $(b,--jobs)), $(b,wall) renders host wall-clock \
     lanes per domain with allocation counts for profiling."
  in
  Arg.(
    value
    & opt (enum [ ("sim", Trc.Sim); ("wall", Trc.Wall) ]) Trc.Sim
    & info [ "trace-mode" ] ~docv:"MODE" ~doc)

(* Run [f] under the causal tracer when [--trace-out] was given, then
   write the Chrome export — also when [f] fails, so a crashed run still
   leaves the trace of what it did. *)
let with_trace trace_out mode f =
  match trace_out with
  | None -> f ()
  | Some path ->
      Trc.reset ();
      Trc.set_enabled true;
      let emit () =
        Trc.set_enabled false;
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Trc.render_chrome ~mode ()))
      in
      Fun.protect ~finally:emit f

(* Validate every [--*-out] path before doing any work: a missing parent
   directory is a one-line argument error, not a [Sys_error] at the end
   of the run. *)
let checked_outputs outputs k =
  match Paths.check_outputs outputs with
  | Error m -> `Error (false, m)
  | Ok () -> k ()

let topology_of_string = function
  | "internet2" -> Ok (B.internet2 ())
  | "geant" -> Ok (B.geant ())
  | "univ1" -> Ok (B.univ1 ())
  | "as3679" -> Ok (B.as3679 ())
  | s -> Error (`Msg (Printf.sprintf "unknown topology %S (expected internet2|geant|univ1|as3679)" s))

let topology_conv =
  Arg.conv
    ( (fun s -> topology_of_string s),
      fun ppf t -> Format.pp_print_string ppf t.B.label )

let seed_arg =
  let doc = "Random seed; every run is deterministic for a given seed." in
  Arg.(value & opt int 20160627 & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg =
  let doc =
    "Scale factor for run counts and snapshot counts (1.0 = paper scale, \
     0.05 = quick smoke run)."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"SCALE" ~doc)

(* --- experiment command ------------------------------------------- *)

let experiment_names =
  [ "table1"; "table3"; "table4"; "table5"; "fig6"; "fig7"; "fig8"; "fig9";
    "fig10"; "fig11"; "fig12"; "jobs"; "ablations"; "all" ]

let run_experiment name seed scale load_source =
  let opts = { C.Experiments.seed; scale } in
  let first (r, _) = r in
  match name with
  | "table1" -> C.Experiments.print (C.Experiments.table1 opts); Ok ()
  | "table3" -> C.Experiments.print (C.Experiments.table3 opts); Ok ()
  | "table4" -> C.Experiments.print (C.Experiments.table4 opts); Ok ()
  | "table5" -> C.Experiments.print (first (C.Experiments.table5 opts)); Ok ()
  | "fig6" -> C.Experiments.print (C.Experiments.fig6 opts); Ok ()
  | "fig7" -> C.Experiments.print (C.Experiments.fig7 opts); Ok ()
  | "fig8" -> C.Experiments.print (C.Experiments.fig8 opts); Ok ()
  | "fig9" ->
      (match load_source with
      | `Oracle -> C.Experiments.print (C.Experiments.fig9 opts)
      | `Polled -> C.Experiments.print (C.Experiments.fig9_polled opts));
      Ok ()
  | "fig10" -> C.Experiments.print (first (C.Experiments.fig10 opts)); Ok ()
  | "fig11" -> C.Experiments.print (first (C.Experiments.fig11 opts)); Ok ()
  | "fig12" -> C.Experiments.print (first (C.Experiments.fig12 opts)); Ok ()
  | "jobs" -> C.Experiments.print (first (C.Experiments.jobs_table opts)); Ok ()
  | "ablations" ->
      List.iter C.Experiments.print (C.Experiments.ablations opts);
      Ok ()
  | "all" ->
      List.iter C.Experiments.print (C.Experiments.all opts);
      List.iter C.Experiments.print (C.Experiments.ablations opts);
      Ok ()
  | other ->
      Error (`Msg (Printf.sprintf "unknown experiment %S (expected %s)" other
                     (String.concat "|" experiment_names)))

let experiment_cmd =
  let name_arg =
    let doc = "Experiment to reproduce: " ^ String.concat ", " experiment_names in
    (* [Arg.enum] gives the conventional cmdliner error — non-zero exit
       plus the list of valid names — on an unknown experiment. *)
    let exp_conv = Arg.enum (List.map (fun n -> (n, n)) experiment_names) in
    Arg.(required & pos 0 (some exp_conv) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let load_source_arg =
    let doc =
      "Load source driving the Fig. 9 overload detector: $(b,oracle) reads \
       the simulator's ground-truth rate (the paper's setting), $(b,polled) \
       reads EWMA-smoothed dataplane counters through the observability \
       poller and additionally reports detection latency vs poll period.  \
       Only $(b,fig9) honors this."
    in
    Arg.(
      value
      & opt (enum [ ("oracle", `Oracle); ("polled", `Polled) ]) `Oracle
      & info [ "load-source" ] ~docv:"SOURCE" ~doc)
  in
  let action name seed scale load_source metrics out =
    match
      with_metrics metrics out (fun () ->
          run_experiment name seed scale load_source)
    with
    | Ok () -> `Ok ()
    | Error (`Msg m) -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one of the paper's tables or figures")
    Term.(
      ret
        (const action $ name_arg $ seed_arg $ scale_arg $ load_source_arg
       $ metrics_arg $ metrics_out_arg))

(* --- solve command ------------------------------------------------- *)

let engine_conv =
  Arg.enum
    [ ("best", `Best); ("lp", `Lp); ("per-class", `Per_class); ("greedy", `Greedy) ]

let solve_action topo seed total max_classes engine jobs verify tm_file
    dataplane metrics out trace_out trace_mode =
  checked_outputs [ ("metrics report", out); ("trace", trace_out) ]
  @@ fun () ->
  with_dataplane dataplane @@ fun () ->
  with_metrics metrics out @@ fun () ->
  with_trace trace_out trace_mode @@ fun () ->
  let n = Apple_topology.Graph.num_nodes topo.B.graph in
  let tm =
    match tm_file with
    | None ->
        let rng = Rng.create seed in
        Tr.Synth.gravity rng ~n ~total
    | Some path -> (
        match Tr.Io.load ~path with
        | Ok tm when Tr.Matrix.size tm = n -> tm
        | Ok tm ->
            failwith
              (Printf.sprintf "matrix is %dx%d but %s has %d nodes"
                 (Tr.Matrix.size tm) (Tr.Matrix.size tm) topo.B.label n)
        | Error e -> failwith e)
  in
  let config = { C.Scenario.default_config with C.Scenario.max_classes } in
  let scenario = C.Scenario.build ~config ~seed topo tm in
  let gate = if verify then Some V.gate else None in
  let controller = C.Controller.create ~engine ?jobs ?gate scenario in
  (try
     let report = C.Controller.run_epoch controller in
     Format.printf "topology:    %s (%d nodes, %d links)@." topo.B.label n
       (Apple_topology.Graph.num_edges topo.B.graph);
     Format.printf "classes:     %d (%.1f Mbps total)@."
       (Array.length scenario.C.Types.classes)
       (C.Types.total_rate scenario);
     Format.printf "model:       %s@."
       report.C.Controller.placement.C.Optimization_engine.model_size;
     Format.printf "instances:   %d (%d CPU cores)@." report.C.Controller.instances
       report.C.Controller.cores;
     Format.printf "LP bound:    %.2f instances@."
       report.C.Controller.placement.C.Optimization_engine.lp_objective;
     Format.printf "TCAM:        %d entries with tagging, %d without (%.1fx)@."
       report.C.Controller.rules.C.Rule_generator.tcam_with_tagging
       report.C.Controller.rules.C.Rule_generator.tcam_without_tagging
       (C.Rule_generator.reduction_ratio report.C.Controller.rules);
     Format.printf "solve time:  %.3f s@." report.C.Controller.solve_seconds;
     if verify then begin
       Format.printf
         "gate:        static verifier certified the rule tables@.";
       match C.Controller.verify controller with
       | Ok () ->
           Format.printf
             "verified:    policy enforcement + interference freedom on every sub-class@."
       | Error e -> Format.printf "VERIFY FAILED: %s@." e
     end;
     `Ok ()
   with
   | C.Optimization_engine.Infeasible msg -> `Error (false, "infeasible: " ^ msg)
   | C.Controller.Rejected msg ->
       `Error (false, "rejected by static verifier: " ^ msg)
   | Failure msg -> `Error (false, msg))

let solve_cmd =
  let topo_arg =
    let doc = "Topology: internet2, geant, univ1 or as3679." in
    Arg.(value & opt topology_conv (B.internet2 ()) & info [ "topology"; "t" ] ~docv:"TOPO" ~doc)
  in
  let total_arg =
    let doc = "Network-wide offered load in Mbps." in
    Arg.(value & opt float 6000.0 & info [ "total" ] ~docv:"MBPS" ~doc)
  in
  let classes_arg =
    let doc = "Maximum number of origin-destination pairs carrying policies." in
    Arg.(value & opt int 120 & info [ "max-classes" ] ~docv:"N" ~doc)
  in
  let engine_arg =
    let doc =
      "Placement engine: $(b,best) (LP/greedy selector), $(b,lp) \
       (monolithic LP pipeline), $(b,per-class) (parallel per-class \
       decomposition) or $(b,greedy)."
    in
    Arg.(value & opt engine_conv `Best & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the per-class/greedy engines' parallel sections \
       (default: the APPLE_JOBS environment variable, else the machine's \
       core count).  The placement is byte-identical for every value."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let verify_arg =
    let doc = "Run the end-to-end packet-walk verification after solving." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let tm_arg =
    let doc =
      "Load the traffic matrix from a CSV file (rows = origins, columns = \
       destinations, Mbps) instead of synthesizing one."
    in
    Arg.(value & opt (some file) None & info [ "tm" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Run the Optimization Engine once and print the placement summary")
    Term.(ret (const solve_action $ topo_arg $ seed_arg $ total_arg $ classes_arg $ engine_arg $ jobs_arg $ verify_arg $ tm_arg $ dataplane_arg $ metrics_arg $ metrics_out_arg $ trace_out_arg $ trace_mode_arg))

(* --- verify command ------------------------------------------------ *)

(* One representative packet walk per sub-class, labelled with the
   sub-class key as its flow id so the flight recorder (and [apple
   trace]) can attribute each event to a flow. *)
let walk_representatives scenario asg (built : C.Rule_generator.built)
    ~on_result =
  Array.iter
    (fun c ->
      let subs =
        List.filter
          (fun sub -> sub.C.Subclass.class_id = c.C.Types.id)
          asg.C.Subclass.subclasses
      in
      if subs <> [] then begin
        let prefixes =
          C.Rule_generator.subclass_prefixes c subs
            ~depth:built.C.Rule_generator.split_depth
        in
        List.iteri
          (fun idx sub ->
            match prefixes.(idx) with
            | [] -> ()
            | p :: _ ->
                let flow = C.Subclass.key sub in
                let r =
                  Walk.run built.C.Rule_generator.network
                    ~path:(Array.to_list c.C.Types.path)
                    ~cls:c.C.Types.id ~src_ip:p.C.Types.Prefix.addr ~flow ()
                in
                on_result c sub p r)
          subs
      end)
    scenario.C.Types.classes

let code_ordinal = function
  | V.Chain_order -> 0
  | V.Path_deviation -> 1
  | V.Blackhole -> 2
  | V.Forwarding_loop -> 3
  | V.Shadowed_rule -> 4
  | V.Tag_collision -> 5
  | V.Isolation -> 6
  | V.Capacity -> 7
  | V.Unverified -> 8

(* Evidence for a rejected configuration: re-walk every sub-class
   representative with the flight recorder on, append one Violation
   event per verifier finding, and dump the ring next to the report. *)
let dump_flight_evidence ~path scenario asg built (r : V.report) =
  let saved = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled saved) @@ fun () ->
  Flight.clear ();
  walk_representatives scenario asg built ~on_result:(fun _ _ _ _ -> ());
  List.iter
    (fun v ->
      Flight.record Flight.Violation
        ~a:(code_ordinal v.V.code)
        ~b:(Option.value ~default:(-1) v.V.class_id)
        ~c:(Option.value ~default:(-1) v.V.sub_id)
        ~d:(Option.value ~default:(-1) v.V.switch)
        ())
    r.V.violations;
  Flight.dump ~path

let flight_out_arg =
  let doc =
    "Where to dump the flight recorder (binary event ring) when the \
     verifier rejects the configuration; inspect it with $(b,apple trace)."
  in
  Arg.(
    value
    & opt string "apple-flight.bin"
    & info [ "flight-out" ] ~docv:"FILE" ~doc)

let verify_action topo seed total max_classes engine jobs flight_out metrics
    out =
  checked_outputs [ ("flight dump", Some flight_out); ("metrics report", out) ]
  @@ fun () ->
  with_metrics metrics out @@ fun () ->
  let n = Apple_topology.Graph.num_nodes topo.B.graph in
  let rng = Rng.create seed in
  let tm = Tr.Synth.gravity rng ~n ~total in
  let config = { C.Scenario.default_config with C.Scenario.max_classes } in
  let scenario = C.Scenario.build ~config ~seed topo tm in
  (* Capture the full report through the controller's admission gate so
     the command exercises the same code path as a gated epoch. *)
  let captured = ref None in
  let gate s asg built =
    captured := Some (V.check s asg built, asg, built);
    Ok ()
  in
  let controller = C.Controller.create ~engine ?jobs ~gate scenario in
  try
    let report = C.Controller.run_epoch controller in
    match !captured with
    | None -> `Error (false, "internal error: the verifier gate never ran")
    | Some (r, asg, built) ->
        Format.printf "topology:  %s (%d nodes), %d classes, engine %s@."
          topo.B.label n
          (Array.length scenario.C.Types.classes)
          (match engine with
          | `Best -> "best" | `Lp -> "lp" | `Per_class -> "per-class"
          | `Greedy -> "greedy");
        Format.printf "placement: %d instances (%d cores), %d TCAM entries@."
          report.C.Controller.instances report.C.Controller.cores
          report.C.Controller.tcam_entries;
        Format.printf "%a" V.pp_report r;
        if V.ok r then `Ok ()
        else begin
          dump_flight_evidence ~path:flight_out scenario asg built r;
          Format.printf "flight recorder dumped to %s (see apple trace)@."
            flight_out;
          `Error (false, "configuration rejected by the static verifier")
        end
  with C.Optimization_engine.Infeasible msg ->
    `Error (false, "infeasible: " ^ msg)

let verify_cmd =
  let topo_arg =
    let doc = "Topology: internet2, geant, univ1 or as3679." in
    Arg.(value & opt topology_conv (B.internet2 ()) & info [ "topology"; "t" ] ~docv:"TOPO" ~doc)
  in
  let total_arg =
    let doc = "Network-wide offered load in Mbps." in
    Arg.(value & opt float 6000.0 & info [ "total" ] ~docv:"MBPS" ~doc)
  in
  let classes_arg =
    let doc = "Maximum number of origin-destination pairs carrying policies." in
    Arg.(value & opt int 120 & info [ "max-classes" ] ~docv:"N" ~doc)
  in
  let engine_arg =
    let doc = "Placement engine to generate the configuration under test." in
    Arg.(value & opt engine_conv `Best & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let jobs_arg =
    let doc = "Worker domains for the parallel engines." in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Statically certify a generated configuration: chain order, \
          interference freedom, isolation, capacity and table \
          well-formedness, with a concrete witness per violation")
    Term.(ret (const verify_action $ topo_arg $ seed_arg $ total_arg $ classes_arg $ engine_arg $ jobs_arg $ flight_out_arg $ metrics_arg $ metrics_out_arg))

(* --- replay command ------------------------------------------------ *)

let replay_action topo seed snapshots metrics out =
  with_metrics metrics out @@ fun () ->
  let profile =
    { Tr.Synth.default_profile with Tr.Synth.snapshots; total_rate = 3000.0;
      burst_probability = 0.06; burst_factor = 25.0; burst_length = 6 }
  in
  let result = C.Simulation.replay ~seed topo ~profile in
  Format.printf "topology:      %s@." result.C.Simulation.label;
  Format.printf "snapshots:     %d@." snapshots;
  Format.printf "APPLE cores:   %d (ingress strawman: %d)@."
    result.C.Simulation.apple_cores result.C.Simulation.ingress_cores;
  let mean = Apple_prelude.Stats.mean in
  Format.printf "loss (fast failover): mean %.4f%%  p95 %.4f%%@."
    (100.0 *. mean result.C.Simulation.loss_with_failover)
    (100.0 *. Apple_prelude.Stats.percentile result.C.Simulation.loss_with_failover 95.0);
  Format.printf "loss (static):        mean %.4f%%  p95 %.4f%%@."
    (100.0 *. mean result.C.Simulation.loss_without_failover)
    (100.0 *. Apple_prelude.Stats.percentile result.C.Simulation.loss_without_failover 95.0);
  Format.printf "extra failover cores: %.1f average@." result.C.Simulation.mean_extra_cores;
  List.iter
    (fun (k, v) -> Format.printf "  %s: %d@." k v)
    result.C.Simulation.failover_events;
  `Ok ()

let replay_cmd =
  let topo_arg =
    let doc = "Topology: internet2, geant or univ1." in
    Arg.(value & opt topology_conv (B.internet2 ()) & info [ "topology"; "t" ] ~docv:"TOPO" ~doc)
  in
  let snapshots_arg =
    let doc = "Number of traffic snapshots to replay." in
    Arg.(value & opt int 672 & info [ "snapshots" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay time-varying traffic with and without fast failover")
    Term.(ret (const replay_action $ topo_arg $ seed_arg $ snapshots_arg $ metrics_arg $ metrics_out_arg))

(* --- policies command ----------------------------------------------- *)

let policies_action topo file verify metrics out =
  with_metrics metrics out @@ fun () ->
  let env = Apple_classifier.Predicate.env () in
  match C.Policy_file.parse_file ~env ~topology:topo ~path:file with
  | Error e -> `Error (false, Format.asprintf "%s: %a" file C.Policy_file.pp_error e)
  | Ok flows -> (
      try
        let r = C.Flow_aggregation.aggregate ~env topo flows in
        Format.printf "%d policies -> %d equivalence classes (%d atomic predicates)@."
          (List.length flows)
          (Array.length r.C.Flow_aggregation.scenario.C.Types.classes)
          (List.length r.C.Flow_aggregation.atoms);
        List.iter
          (fun info ->
            let cls =
              r.C.Flow_aggregation.scenario.C.Types.classes.(info.C.Flow_aggregation.class_id)
            in
            Format.printf
              "  class %d: %d member(s), %.1f Mbps, chain %s, %d classifier rule(s)@."
              info.C.Flow_aggregation.class_id
              (List.length info.C.Flow_aggregation.members)
              cls.C.Types.rate
              (Apple_vnf.Nf.chain_to_string (Array.to_list cls.C.Types.chain))
              info.C.Flow_aggregation.tcam_rules)
          r.C.Flow_aggregation.classes_info;
        let gate = if verify then Some V.gate else None in
        let controller = C.Controller.create ?gate r.C.Flow_aggregation.scenario in
        let report = C.Controller.run_epoch controller in
        Format.printf "placement: %d instances, %d cores, %d TCAM entries@."
          report.C.Controller.instances report.C.Controller.cores
          report.C.Controller.tcam_entries;
        if verify then begin
          Format.printf "gate: static verifier certified the rule tables@.";
          match C.Controller.verify controller with
          | Ok () -> Format.printf "verified: every class enforced on its unchanged path@."
          | Error e -> Format.printf "VERIFY FAILED: %s@." e
        end;
        `Ok ()
      with
      | C.Flow_aggregation.No_route m -> `Error (false, m)
      | C.Optimization_engine.Infeasible m -> `Error (false, "infeasible: " ^ m)
      | C.Controller.Rejected m ->
          `Error (false, "rejected by static verifier: " ^ m))

let policies_cmd =
  let topo_arg =
    let doc = "Topology the node names refer to." in
    Arg.(value & opt topology_conv (B.internet2 ()) & info [ "topology"; "t" ] ~docv:"TOPO" ~doc)
  in
  let file_arg =
    let doc = "Policy file (see Apple_core.Policy_file for the grammar)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let verify_arg =
    let doc = "Packet-walk every class after solving." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  Cmd.v
    (Cmd.info "policies"
       ~doc:"Aggregate a policy file into classes, place VNFs and verify")
    Term.(ret (const policies_action $ topo_arg $ file_arg $ verify_arg $ metrics_arg $ metrics_out_arg))

(* --- top command ---------------------------------------------------- *)

let top_action topo seed total max_classes duration once flight_out metrics
    out =
  checked_outputs [ ("flight dump", flight_out); ("metrics report", out) ]
  @@ fun () ->
  with_metrics metrics out @@ fun () ->
  let n = Apple_topology.Graph.num_nodes topo.B.graph in
  let rng = Rng.create seed in
  let tm = Tr.Synth.gravity rng ~n ~total in
  let config = { C.Scenario.default_config with C.Scenario.max_classes } in
  let scenario = C.Scenario.build ~config ~seed topo tm in
  let controller = C.Controller.create scenario in
  try
    let report = C.Controller.run_epoch controller in
    let asg =
      match C.Controller.assignment controller with
      | Some asg -> asg
      | None -> failwith "internal error: epoch left no assignment"
    in
    let built = report.C.Controller.rules in
    (* One CBR flow per sub-class, offered at the sub-class's pinned
       share of its class rate (1500 B packets). *)
    let flows = ref [] in
    Array.iter
      (fun c ->
        let subs =
          List.filter
            (fun sub -> sub.C.Subclass.class_id = c.C.Types.id)
            asg.C.Subclass.subclasses
        in
        if subs <> [] then begin
          let prefixes =
            C.Rule_generator.subclass_prefixes c subs
              ~depth:built.C.Rule_generator.split_depth
          in
          List.iteri
            (fun idx sub ->
              match prefixes.(idx) with
              | [] -> ()
              | p :: _ ->
                  let mbps = c.C.Types.rate *. sub.C.Subclass.weight in
                  let pps = mbps *. 1e6 /. 8.0 /. 1500.0 in
                  if pps >= 1.0 then
                    flows :=
                      {
                        PS.flow_name =
                          Printf.sprintf "c%d.s%d" c.C.Types.id
                            sub.C.Subclass.sub_id;
                        cls = c.C.Types.id;
                        src_ip = p.C.Types.Prefix.addr;
                        path = Array.to_list c.C.Types.path;
                        source = PS.Cbr pps;
                        start_at = 0.0;
                        stop_at = duration;
                      }
                      :: !flows)
            subs
        end)
      scenario.C.Types.classes;
    let flows = List.rev !flows in
    if flows = [] then failwith "no sub-class carries measurable traffic";
    let saved = Obs.enabled () in
    Obs.reset ();
    Flight.clear ();
    Obs.set_enabled true;
    Fun.protect ~finally:(fun () -> Obs.set_enabled saved)
    @@ fun () ->
    let poller = Poller.create () in
    let poll now =
      Poller.poll poller ~now;
      if not once then print_endline (Top.summary ~now poller)
    in
    let r =
      PS.run ~seed ~network:built.C.Rule_generator.network
        ~instances:asg.C.Subclass.instances ~flows ~duration
        ~poll:(Poller.period poller, poll)
        ()
    in
    let capacities =
      List.map
        (fun i -> (I.id i, (I.spec i).Apple_vnf.Nf.capacity_mbps))
        asg.C.Subclass.instances
    in
    print_string (Top.render ~capacities ~now:duration poller);
    Format.printf
      "simulated %.2fs of traffic: %d flows, %d packets sent, %.3f%% lost@."
      duration (List.length flows) r.PS.total_sent (100.0 *. r.PS.loss_rate);
    (match flight_out with
    | None -> ()
    | Some path ->
        Flight.dump ~path;
        Format.printf "flight recorder dumped to %s@." path);
    `Ok ()
  with
  | C.Optimization_engine.Infeasible msg -> `Error (false, "infeasible: " ^ msg)
  | PS.Unroutable msg -> `Error (false, "unroutable flow: " ^ msg)
  | Failure msg -> `Error (false, msg)

let top_cmd =
  let topo_arg =
    let doc = "Topology: internet2, geant, univ1 or as3679." in
    Arg.(value & opt topology_conv (B.internet2 ()) & info [ "topology"; "t" ] ~docv:"TOPO" ~doc)
  in
  let total_arg =
    let doc = "Network-wide offered load in Mbps." in
    Arg.(value & opt float 2000.0 & info [ "total" ] ~docv:"MBPS" ~doc)
  in
  let classes_arg =
    let doc = "Maximum number of origin-destination pairs carrying policies." in
    Arg.(value & opt int 40 & info [ "max-classes" ] ~docv:"N" ~doc)
  in
  let duration_arg =
    let doc = "Virtual seconds of packet traffic to simulate." in
    Arg.(value & opt float 0.25 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let once_arg =
    let doc =
      "Print only the final load tables (default also prints one status \
       line per counter poll)."
    in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let flight_arg =
    let doc = "Also dump the flight recorder to $(docv) after the run." in
    Arg.(value & opt (some string) None & info [ "flight-out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Solve an epoch, drive packet traffic through the installed rule \
          tables, and render per-switch and per-VNF-instance load from \
          polled dataplane counters")
    Term.(
      ret
        (const top_action $ topo_arg $ seed_arg $ total_arg $ classes_arg
       $ duration_arg $ once_arg $ flight_arg $ metrics_arg $ metrics_out_arg))

(* --- trace command --------------------------------------------------- *)

let trace_action flow dump =
  match Flight.load ~path:dump with
  | Error e -> `Error (false, e)
  | Ok events -> (
      match flow with
      | None ->
          let listing = Provenance.flows events in
          Format.printf "%s: %d event(s), %d flow(s)@." dump
            (List.length events) (List.length listing);
          List.iter
            (fun (f, count) ->
              let chain = Provenance.of_events events ~flow:f in
              let outcome =
                match chain.Provenance.outcome with
                | `Ok -> "ok"
                | `Failed e -> "FAILED: " ^ e
                | `Unknown -> "unknown"
              in
              Format.printf "  flow %d: %d event(s), %s@." f count outcome)
            listing;
          `Ok ()
      | Some f ->
          print_string (Provenance.render (Provenance.of_events events ~flow:f));
          `Ok ())

let trace_cmd =
  let flow_arg =
    let doc =
      "Flow id to explain (a sub-class key for verifier walks, a flow \
       index for packet-sim runs).  Without it, list every flow in the \
       dump."
    in
    Arg.(value & pos 0 (some int) None & info [] ~docv:"FLOW" ~doc)
  in
  let dump_arg =
    let doc = "Flight-recorder dump to read." in
    Arg.(
      value
      & opt string "apple-flight.bin"
      & info [ "dump" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Reconstruct a flow's causal chain (classification rule, sub-class \
          tag, hosts, VNF instances, outcome) from a flight-recorder dump")
    Term.(ret (const trace_action $ flow_arg $ dump_arg))

(* --- chaos command -------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let chaos_action topo seed schedule_file duration round jobs boot flight_out
    dataplane metrics out trace_out trace_mode =
  checked_outputs
    [
      ("flight dump", flight_out);
      ("metrics report", out);
      ("trace", trace_out);
    ]
  @@ fun () ->
  with_dataplane dataplane @@ fun () ->
  with_metrics metrics out @@ fun () ->
  with_trace trace_out trace_mode @@ fun () ->
  let schedule =
    match schedule_file with
    | Some path -> Ch.Fault.parse (read_file path)
    | None ->
        (* Default drill: kill the hottest instance half a second in. *)
        Ok
          (Ch.Fault.add Ch.Fault.empty ~at:0.5
             (Ch.Fault.Kill_instance Ch.Fault.Hottest))
  in
  match schedule with
  | Error m -> `Error (false, "bad schedule: " ^ m)
  | Ok schedule -> (
      Obs.set_enabled true;
      let config =
        { Ch.Chaos.default_config with Ch.Chaos.duration; round; jobs; boot }
      in
      let s =
        Ch.Experiments.scenario_for { C.Experiments.seed; scale = 1.0 } topo
      in
      try
        let o = Ch.Chaos.run ~config ~seed ~schedule s in
        print_string (Ch.Chaos.render o);
        (match flight_out with
        | Some path when Flight.length () > 0 ->
            Flight.dump ~path;
            Format.printf "flight recorder dumped to %s (see apple trace)@."
              path
        | _ -> ());
        `Ok ()
      with
      | C.Controller.Rejected m ->
          `Error (false, "initial epoch rejected by the static verifier: " ^ m)
      | C.Optimization_engine.Infeasible m -> `Error (false, "infeasible: " ^ m))

let chaos_cmd =
  let topo_arg =
    let doc = "Topology: internet2, geant, univ1 or as3679." in
    Arg.(
      value
      & opt topology_conv (B.internet2 ())
      & info [ "topology"; "t" ] ~docv:"TOPO" ~doc)
  in
  let schedule_arg =
    let doc =
      "Fault schedule file (lines $(b,at TIME KIND ARGS); see \
       examples/chaos_internet2.sched).  Without one, a single \
       kill-instance drill against the hottest instance runs at t=0.5 s."
    in
    Arg.(
      value & opt (some file) None & info [ "schedule" ] ~docv:"FILE" ~doc)
  in
  let duration_arg =
    let doc =
      "Run length in simulated seconds; 0 auto-extends past the last \
       scheduled event plus the slowest respawn."
    in
    Arg.(value & opt float 0.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let round_arg =
    let doc = "Control-round period in simulated seconds." in
    Arg.(value & opt float 0.05 & info [ "round" ] ~docv:"SECONDS" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the placement engine; the outcome is \
       byte-identical for every value."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let boot_arg =
    let doc =
      "Respawn boot path: $(b,clickos) (30 ms), $(b,openstack) (3.9-4.6 s), \
       $(b,reconfigure) (30 ms) or $(b,normal) (30 s).  Default: per-kind."
    in
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("clickos", Apple_vnf.Lifecycle.Raw_clickos);
                  ("openstack", Apple_vnf.Lifecycle.Openstack);
                  ("reconfigure", Apple_vnf.Lifecycle.Reconfigure);
                  ("normal", Apple_vnf.Lifecycle.Normal_vm);
                ]))
          None
      & info [ "boot" ] ~docv:"PATH" ~doc)
  in
  let chaos_flight_arg =
    let doc =
      "Dump the flight recorder (blackholes, repairs, heals) to $(docv) \
       after the run; inspect it with $(b,apple trace)."
    in
    Arg.(
      value & opt (some string) None & info [ "flight-out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Inject a deterministic fault schedule (VM deaths, link/switch \
          failures, TCAM rule loss, poller blackouts) into a running \
          scenario and report recovery times, packet loss and verifier \
          status per fault")
    Term.(
      ret
        (const chaos_action $ topo_arg $ seed_arg $ schedule_arg
       $ duration_arg $ round_arg $ jobs_arg $ boot_arg $ chaos_flight_arg
       $ dataplane_arg $ metrics_arg $ metrics_out_arg $ trace_out_arg
       $ trace_mode_arg))

(* --- failover experiment command ------------------------------------ *)

let failover_action seed scale metrics out =
  with_metrics metrics out @@ fun () ->
  C.Experiments.print (Ch.Experiments.fig_failover { C.Experiments.seed; scale });
  `Ok ()

let failover_cmd =
  Cmd.v
    (Cmd.info "failover"
       ~doc:
         "Run the failover table: recovery time, packets lost and verifier \
          status per fault kind and schedule density on Internet2 and GEANT")
    Term.(
      ret (const failover_action $ seed_arg $ scale_arg $ metrics_arg
         $ metrics_out_arg))

(* --- soak command --------------------------------------------------- *)

let soak_action topo seed epochs reopt checkpoint cycle total classes heal
    loss_band window_band mem_slack engine jobs load_source schedule_file
    state_dir resume halt_at stream_path summary_out bench_json_out flight_out
    dataplane metrics out trace_out trace_mode =
  checked_outputs
    [
      ("summary", summary_out);
      ("bench snapshot", bench_json_out);
      ("flight dump", flight_out);
      ("metrics report", out);
      ("trace", trace_out);
    ]
  @@ fun () ->
  with_dataplane dataplane @@ fun () ->
  with_metrics metrics out @@ fun () ->
  with_trace trace_out trace_mode @@ fun () ->
  let schedule =
    match schedule_file with
    | Some path -> Ch.Fault.parse (read_file path)
    | None -> Ok Ch.Fault.empty
  in
  match schedule with
  | Error m -> `Error (false, "bad schedule: " ^ m)
  | Ok schedule -> (
      let cfg =
        {
          (Sk.default_config topo) with
          Sk.seed;
          epochs;
          reopt_every = reopt;
          checkpoint_every = checkpoint;
          cycle;
          total_rate = total;
          max_classes = classes;
          heal_after = heal;
          loss_band;
          window_band;
          mem_slack;
          engine;
          jobs;
          load_source;
          schedule;
        }
      in
      (match flight_out with Some _ -> Obs.set_enabled true | None -> ());
      (match state_dir with
      | Some d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755
      | None -> ());
      let stream_path =
        match (stream_path, state_dir) with
        | Some p, _ -> Some p
        | None, Some d -> Some (Filename.concat d "stream.log")
        | None, None -> None
      in
      let sess =
        if resume then
          match state_dir with
          | None -> Error "soak: --resume needs --state-dir"
          | Some d -> Sk.resume_dir ?stream_path cfg ~dir:d
        else Sk.create ?stream_path cfg
      in
      match sess with
      | Error m -> `Error (false, m)
      | Ok sess ->
          let o = Sk.run ?halt_at ?state_dir sess in
          print_string o.Sk.summary;
          print_string o.Sk.perf;
          (match summary_out with
          | Some path ->
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () -> output_string oc o.Sk.summary)
          | None -> ());
          (match bench_json_out with
          | Some path ->
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () -> output_string oc (Sk.bench_json sess o));
              Format.printf "bench trajectory written to %s@." path
          | None -> ());
          (match flight_out with
          | Some path when Flight.length () > 0 ->
              Flight.dump ~path;
              Format.printf "flight recorder dumped to %s (see apple trace)@."
                path
          | _ -> ());
          (match o.Sk.violations with
          | _ :: _ as vs ->
              `Error
                ( false,
                  Printf.sprintf "soak: %d invariant violation(s)"
                    (List.length vs) )
          | [] ->
              if o.Sk.completed && not o.Sk.mem_flat then
                `Error (false, "soak: live words grew past the allowed slack")
              else `Ok ()))

let soak_cmd =
  let topo_arg =
    let doc = "Topology: internet2, geant, univ1 or as3679." in
    Arg.(
      value
      & opt topology_conv (B.internet2 ())
      & info [ "topology"; "t" ] ~docv:"TOPO" ~doc)
  in
  let epochs_arg =
    let doc = "Total epochs (traffic snapshots) to run." in
    Arg.(value & opt int 2000 & info [ "epochs" ] ~docv:"N" ~doc)
  in
  let reopt_arg =
    let doc = "Epochs between global re-optimizations (96 = one diurnal day)." in
    Arg.(value & opt int 96 & info [ "reopt-every" ] ~docv:"N" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Epochs between checkpoints (deferred past epochs holding transient \
       failover state)."
    in
    Arg.(value & opt int 48 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let cycle_arg =
    let doc = "Traffic snapshots before the diurnal sequence repeats." in
    Arg.(value & opt int 672 & info [ "cycle" ] ~docv:"N" ~doc)
  in
  let total_arg =
    let doc = "Network-wide offered load in Mbps (diurnal mean)." in
    Arg.(value & opt float 3000.0 & info [ "total" ] ~docv:"MBPS" ~doc)
  in
  let classes_arg =
    let doc = "Maximum number of flow classes." in
    Arg.(value & opt int 40 & info [ "max-classes" ] ~docv:"N" ~doc)
  in
  let heal_arg =
    let doc = "Epochs between a kill fault and its respawn heal." in
    Arg.(value & opt int 2 & info [ "heal-after" ] ~docv:"N" ~doc)
  in
  let loss_band_arg =
    let doc = "Per-epoch fault-free loss bound (invariant)." in
    Arg.(value & opt float 0.15 & info [ "loss-band" ] ~docv:"FRACTION" ~doc)
  in
  let window_band_arg =
    let doc = "Per-window fault-free mean loss bound (invariant)." in
    Arg.(value & opt float 0.02 & info [ "window-band" ] ~docv:"FRACTION" ~doc)
  in
  let mem_slack_arg =
    let doc =
      "Allowed live-words growth factor over the first window boundary's \
       sample (perf verdict)."
    in
    Arg.(value & opt float 1.5 & info [ "mem-slack" ] ~docv:"FACTOR" ~doc)
  in
  let engine_arg =
    let doc = "Placement engine: $(b,best), $(b,lp), $(b,per-class) or $(b,greedy)." in
    Arg.(value & opt engine_conv `Best & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the parallel engines; artifacts are byte-identical \
       for every value."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let load_source_arg =
    let doc =
      "Where the Dynamic Handler reads instance loads: $(b,oracle) (simulator \
       ground truth) or $(b,polled) (counter-derived estimates; checkpoints \
       then only land on window boundaries)."
    in
    Arg.(
      value
      & opt (enum [ ("oracle", Sk.Oracle); ("polled", Sk.Polled) ]) Sk.Oracle
      & info [ "load-source" ] ~docv:"SOURCE" ~doc)
  in
  let schedule_arg =
    let doc =
      "Fault schedule file (lines $(b,at EPOCH KIND ARGS); see \
       examples/soak_internet2.soak).  Times are epochs, not seconds."
    in
    Arg.(value & opt (some file) None & info [ "schedule" ] ~docv:"FILE" ~doc)
  in
  let state_dir_arg =
    let doc =
      "Directory for checkpoint.apple and stream.log; enables kill/resume."
    in
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let resume_arg =
    let doc = "Resume from $(b,--state-dir)'s last checkpoint." in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let halt_arg =
    let doc = "Stop after $(docv) epochs (for kill/resume drills)." in
    Arg.(value & opt (some int) None & info [ "halt-at" ] ~docv:"EPOCH" ~doc)
  in
  let stream_arg =
    let doc =
      "Write the deterministic per-epoch stream to $(docv) (default: \
       $(b,--state-dir)/stream.log when a state dir is given)."
    in
    Arg.(value & opt (some string) None & info [ "stream" ] ~docv:"FILE" ~doc)
  in
  let summary_out_arg =
    let doc = "Also write the deterministic summary to $(docv)." in
    Arg.(value & opt (some string) None & info [ "summary-out" ] ~docv:"FILE" ~doc)
  in
  let bench_json_arg =
    let doc =
      "Write the BENCH_soak.json trajectory snapshot (schema \
       apple-bench-soak/1) to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "bench-json" ] ~docv:"FILE" ~doc)
  in
  let soak_flight_arg =
    let doc = "Dump the flight recorder to $(docv) after the run." in
    Arg.(
      value & opt (some string) None & info [ "flight-out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Thousands-of-epochs endurance run: diurnal traffic, periodic \
          re-optimization, scheduled faults, per-epoch invariant checks, \
          and checkpoint/restore with byte-identical continuation")
    Term.(
      ret
        (const soak_action $ topo_arg $ seed_arg $ epochs_arg $ reopt_arg
       $ checkpoint_arg $ cycle_arg $ total_arg $ classes_arg $ heal_arg
       $ loss_band_arg $ window_band_arg $ mem_slack_arg $ engine_arg
       $ jobs_arg $ load_source_arg $ schedule_arg $ state_dir_arg
       $ resume_arg $ halt_arg $ stream_arg $ summary_out_arg
       $ bench_json_arg $ soak_flight_arg $ dataplane_arg $ metrics_arg
       $ metrics_out_arg $ trace_out_arg $ trace_mode_arg))

(* --- slice command -------------------------------------------------- *)

let slice_action mode topo seed trace_file synth_events tenant name rate demand
    classes weight isolated nat slice_seed host_cores no_gate engine jobs
    dataplane metrics out trace_out trace_mode =
  checked_outputs [ ("metrics report", out); ("trace", trace_out) ]
  @@ fun () ->
  with_dataplane dataplane @@ fun () ->
  with_metrics metrics out @@ fun () ->
  with_trace trace_out trace_mode @@ fun () ->
  let gate = not no_gate in
  let load_trace () =
    match (trace_file, synth_events) with
    | Some path, _ -> Sl.Trace.load path
    | None, Some n -> Ok (Sl.Trace.synth ~seed ~events:n)
    | None, None -> Ok { Sl.Trace.cores = None; entries = [] }
  in
  match load_trace () with
  | Error e -> `Error (false, "slice trace: " ^ e)
  | Ok tr -> (
      let mgr, outcome =
        Sl.Trace.run ?engine ?jobs ~gate ?host_cores topo tr
      in
      match mode with
      | `Run ->
          if trace_file = None && synth_events = None then
            `Error
              (false, "run-trace needs --trace FILE or --synth N (event stream)")
          else begin
            print_string (Sl.Trace.render outcome);
            `Ok ()
          end
      | `Admit -> (
          if outcome.Sl.Trace.events > 0 then
            Printf.printf
              "(replayed %d event(s): admitted=%d rejected=%d departed=%d)\n"
              outcome.Sl.Trace.events outcome.Sl.Trace.admitted
              (outcome.Sl.Trace.rejected_capacity
              + outcome.Sl.Trace.rejected_tag_space
              + outcome.Sl.Trace.rejected_verifier)
              outcome.Sl.Trace.departed;
          let spec =
            Sl.Slice.synth_spec topo ~seed:slice_seed ~tenant ~name ~isolated
              ~weight ?demand ~nat ~rate ~classes ()
          in
          match Sl.Slice.admit mgr spec with
          | Ok adm ->
              Printf.printf
                "ADMIT %s/%s: slice=%d residents=%d inst=%d cores=%d tcam=%d \
                 tags=%d (%d left) verified-subclasses=%d\n"
                tenant name adm.Sl.Slice.slice_id adm.Sl.Slice.residents
                adm.Sl.Slice.instances adm.Sl.Slice.cores
                adm.Sl.Slice.tcam_rules adm.Sl.Slice.global_tags
                adm.Sl.Slice.tags_left adm.Sl.Slice.verified_subclasses;
              List.iter
                (fun (k, f) -> Printf.printf "  throttled %s to %.2f\n" k f)
                adm.Sl.Slice.throttled;
              print_string (Sl.Slice.top mgr);
              `Ok ()
          | Error reason ->
              Printf.printf "REJECT %s/%s: %s\n" tenant name
                (Format.asprintf "%a" Sl.Slice.pp_reason reason);
              print_string (Sl.Slice.top mgr);
              `Ok ()
          | exception Invalid_argument msg -> `Error (false, msg))
      | `Depart -> (
          match Sl.Slice.depart mgr ~tenant ~name with
          | Ok d ->
              Printf.printf
                "DEPART %s/%s: residents=%d freed-cores=%d freed-tcam=%d \
                 freed-tags=%d\n"
                tenant name d.Sl.Slice.residents d.Sl.Slice.freed_cores
                d.Sl.Slice.freed_tcam d.Sl.Slice.freed_tags;
              print_string (Sl.Slice.top mgr);
              `Ok ()
          | Error e -> `Error (false, e)))

let slice_cmd =
  let mode_arg =
    let doc =
      "What to do: $(b,run-trace) replays an event stream ($(b,--trace) or \
       $(b,--synth)); $(b,admit) replays first (when a stream was given) \
       then admits one slice from the $(b,--tenant)/$(b,--name)/$(b,--rate) \
       flags; $(b,depart) removes a resident slice."
    in
    Arg.(
      value
      & pos 0 (enum [ ("run-trace", `Run); ("admit", `Admit); ("depart", `Depart) ]) `Run
      & info [] ~docv:"MODE" ~doc)
  in
  let topo_arg =
    let doc = "Topology: internet2, geant, univ1 or as3679." in
    Arg.(
      value
      & opt topology_conv (B.internet2 ())
      & info [ "topology"; "t" ] ~docv:"TOPO" ~doc)
  in
  let trace_arg =
    let doc =
      "Slice arrival/departure trace file (see \
       examples/slices_internet2.trace)."
    in
    Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let synth_arg =
    let doc =
      "Instead of $(b,--trace), synthesize a deterministic $(docv)-event \
       stream from $(b,--seed)."
    in
    Arg.(value & opt (some int) None & info [ "synth" ] ~docv:"EVENTS" ~doc)
  in
  let tenant_arg =
    let doc = "Tenant owning the slice (admit/depart modes)." in
    Arg.(value & opt string "tenant0" & info [ "tenant" ] ~docv:"NAME" ~doc)
  in
  let name_arg =
    let doc = "Slice name, unique per tenant (admit/depart modes)." in
    Arg.(value & opt string "slice0" & info [ "name" ] ~docv:"NAME" ~doc)
  in
  let rate_arg =
    let doc = "Guaranteed aggregate rate in Mbps (admit mode)." in
    Arg.(value & opt float 500.0 & info [ "rate" ] ~docv:"MBPS" ~doc)
  in
  let demand_arg =
    let doc = "Offered demand in Mbps (default: the guaranteed rate)." in
    Arg.(value & opt (some float) None & info [ "demand" ] ~docv:"MBPS" ~doc)
  in
  let classes_arg =
    let doc = "Traffic classes synthesized for the slice." in
    Arg.(value & opt int 3 & info [ "classes" ] ~docv:"N" ~doc)
  in
  let weight_arg =
    let doc = "Fair-share weight under contention." in
    Arg.(value & opt float 1.0 & info [ "weight" ] ~docv:"W" ~doc)
  in
  let isolated_arg =
    let doc = "Demand tenant isolation (dedicated VNF instances)." in
    Arg.(value & flag & info [ "isolated" ] ~doc)
  in
  let nat_arg =
    let doc =
      "Force a header-rewriting (NAT) chain, pushing the joint tables into \
       global-tag mode."
    in
    Arg.(value & flag & info [ "nat" ] ~doc)
  in
  let slice_seed_arg =
    let doc = "Seed for the admitted slice's synthesized spec (admit mode)." in
    Arg.(value & opt int 7 & info [ "slice-seed" ] ~docv:"SEED" ~doc)
  in
  let host_cores_arg =
    let doc =
      "Per-host core budget (default 64, or the trace's $(b,cores) \
       directive)."
    in
    Arg.(value & opt (some int) None & info [ "host-cores" ] ~docv:"N" ~doc)
  in
  let no_gate_arg =
    let doc =
      "Skip the static-verifier admission gate (tag-space and isolation \
       checks still run)."
    in
    Arg.(value & flag & info [ "no-gate" ] ~doc)
  in
  let engine_arg =
    let doc = "Placement engine: $(b,best), $(b,lp), $(b,per-class) or $(b,greedy)." in
    Arg.(value & opt (some engine_conv) None & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the parallel engines; admission decisions and the \
       rendered report are byte-identical for every value."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "slice"
       ~doc:
         "Multi-tenant slice lifecycle: admit/depart slices online against \
          substrate headroom with the static verifier as the admission gate, \
          weighted cross-slice fairness and per-tenant accounting")
    Term.(
      ret
        (const slice_action $ mode_arg $ topo_arg $ seed_arg $ trace_arg
       $ synth_arg $ tenant_arg $ name_arg $ rate_arg $ demand_arg
       $ classes_arg $ weight_arg $ isolated_arg $ nat_arg $ slice_seed_arg
       $ host_cores_arg $ no_gate_arg $ engine_arg $ jobs_arg $ dataplane_arg
       $ metrics_arg $ metrics_out_arg $ trace_out_arg $ trace_mode_arg))

(* --- topologies command -------------------------------------------- *)

let topologies_action () =
  List.iter
    (fun (t : B.named) ->
      Format.printf "%-10s %3d nodes %4d links  ingress=%d core=%d@." t.B.label
        (Apple_topology.Graph.num_nodes t.B.graph)
        (Apple_topology.Graph.num_edges t.B.graph)
        (List.length t.B.ingress) (List.length t.B.core))
    (B.all_paper_topologies ());
  `Ok ()

let topologies_cmd =
  Cmd.v
    (Cmd.info "topologies" ~doc:"List the built-in evaluation topologies")
    Term.(ret (const topologies_action $ const ()))

(* --- profile command ------------------------------------------------ *)

let profile_action name seed scale jobs trace_out trace_mode metrics out =
  checked_outputs [ ("metrics report", out); ("trace", trace_out) ]
  @@ fun () ->
  (* The experiment drivers size their pools from APPLE_JOBS; pinning it
     here makes `apple profile --jobs N` reach every parallel section. *)
  Option.iter (fun j -> Unix.putenv "APPLE_JOBS" (string_of_int (max 1 j))) jobs;
  with_metrics metrics out @@ fun () ->
  Trc.reset ();
  Trc.set_enabled true;
  let finish () =
    Trc.set_enabled false;
    (match trace_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (Trc.render_chrome ~mode:trace_mode ())));
    (* The attribution table is a profiler: always wall time. *)
    print_string (Trc.render_table ~mode:Trc.Wall ())
  in
  match
    Fun.protect ~finally:finish (fun () ->
        run_experiment name seed scale `Oracle)
  with
  | Ok () -> `Ok ()
  | Error (`Msg m) -> `Error (false, m)

let profile_cmd =
  let exp_conv = Arg.enum (List.map (fun n -> (n, n)) experiment_names) in
  let exp_arg =
    let doc =
      "Experiment workload to profile: "
      ^ String.concat ", " experiment_names
      ^ "."
    in
    Arg.(
      value & opt exp_conv "table3"
      & info [ "experiment" ] ~docv:"EXPERIMENT" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the parallel engine sections (sets APPLE_JOBS \
       for the run).  The $(b,sim)-mode trace is byte-identical for every \
       value."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run an experiment under the causal tracer and print the \
          per-span/per-phase self-time attribution table; optionally \
          export the Chrome trace (apple-trace/1) for Perfetto")
    Term.(
      ret
        (const profile_action $ exp_arg $ seed_arg $ scale_arg $ jobs_arg
       $ trace_out_arg $ trace_mode_arg $ metrics_arg $ metrics_out_arg))

let main =
  let doc = "APPLE: interference-free NFV policy enforcement (ICDCS 2016 reproduction)" in
  Cmd.group (Cmd.info "apple" ~doc)
    [
      experiment_cmd;
      solve_cmd;
      verify_cmd;
      replay_cmd;
      policies_cmd;
      top_cmd;
      trace_cmd;
      chaos_cmd;
      failover_cmd;
      soak_cmd;
      slice_cmd;
      profile_cmd;
      topologies_cmd;
    ]

(* Last-gasp flight dump: if a command dies on an uncaught exception
   while the dataplane counters were live, persist whatever the ring
   still holds so [apple trace --dump apple-flight-crash.bin] can
   reconstruct the final flows.  [~catch:false] lets the exception reach
   us instead of cmdliner's backtrace printer; we re-raise with the
   original backtrace so the exit behaviour is unchanged. *)
let () =
  try exit (Cmd.eval ~catch:false main)
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    if Obs.enabled () && Flight.length () > 0 then begin
      Flight.dump ~path:"apple-flight-crash.bin";
      Printf.eprintf "apple: flight recorder dumped to apple-flight-crash.bin\n%!"
    end;
    Printexc.raise_with_backtrace e bt
