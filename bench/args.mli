(** Benchmark-harness argument parsing (library, for unit tests). *)

type t = {
  json : string option;  (** [--json FILE]: write a BENCH_core.json snapshot *)
  filter : string list option;
      (** [None] = run everything; [Some names] = run just these *)
}

val parse :
  section_names:string list ->
  experiment_names:string list ->
  argv:string list ->
  only:string option ->
  (t, string) result
(** Validate positional names ([argv], executable name excluded) and the
    APPLE_BENCH_ONLY value ([only], used only when no positional names
    were given).  Unknown names are an [Error] listing the valid
    vocabulary — never silently ignored. *)

val wants : t -> string -> bool
(** [wants t name] — should the section/artifact [name] run? *)
