(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the serial-vs-parallel jobs study, then runs Bechamel
   micro-benchmarks on the hot kernels.

     dune exec bench/main.exe                 # full paper scale
     APPLE_BENCH_SCALE=0.05 dune exec bench/main.exe   # quick smoke run
     APPLE_BENCH_ONLY=jobs dune exec bench/main.exe    # one section

   APPLE_BENCH_ONLY filters sections: paper | ablations | jobs | micro
   (comma-separated to combine).  One experiment driver per artifact
   (Table I/III/IV/V, Fig 6-12) lives in Apple_core.Experiments; this
   harness prints them all and appends kernel timings. *)

module C = Apple_core
module B = Apple_topology.Builders
module Tr = Apple_traffic
module Rng = Apple_prelude.Rng

let scale =
  match Sys.getenv_opt "APPLE_BENCH_SCALE" with
  | Some s -> (try float_of_string s with _ -> 1.0)
  | None -> 1.0

let seed =
  match Sys.getenv_opt "APPLE_BENCH_SEED" with
  | Some s -> (try int_of_string s with _ -> 20160627)
  | None -> 20160627

(* Section filter: APPLE_BENCH_ONLY="paper,jobs" runs just those. *)
let sections =
  match Sys.getenv_opt "APPLE_BENCH_ONLY" with
  | None | Some "" -> None
  | Some s -> Some (String.split_on_char ',' (String.lowercase_ascii s))

let wants name =
  match sections with None -> true | Some l -> List.mem name l

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures.                             *)

let reproduce_paper () =
  let opts = { C.Experiments.seed; scale } in
  List.iter C.Experiments.print (C.Experiments.all opts)

let run_ablations () =
  let opts = { C.Experiments.seed; scale } in
  print_endline "---- ablations (beyond the paper's figures) ----\n";
  List.iter C.Experiments.print (C.Experiments.ablations opts)

(* Serial vs parallel: the per-class decomposition at several jobs
   values against the monolithic LP, plus the determinism check. *)
let run_jobs () =
  let opts = { C.Experiments.seed; scale } in
  print_endline "---- jobs study (APPLE_JOBS / --jobs) ----\n";
  Printf.printf "recommended_domain_count = %d\n\n%!"
    (Domain.recommended_domain_count ());
  let rendered, _ = C.Experiments.jobs_table opts in
  C.Experiments.print rendered

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks on the framework's kernels.       *)

open Bechamel
open Toolkit

(* Pre-built inputs shared by the kernels (construction excluded from the
   measured region). *)
let bench_scenario =
  lazy
    (let named = B.internet2 () in
     let rng = Rng.create seed in
     let tm = Tr.Synth.gravity rng ~n:12 ~total:3000.0 in
     let config = { C.Scenario.default_config with C.Scenario.max_classes = 12 } in
     C.Scenario.build ~config ~seed named tm)

let bench_placement = lazy (C.Optimization_engine.solve (Lazy.force bench_scenario))
let bench_assignment =
  lazy (C.Subclass.assign (Lazy.force bench_scenario) (Lazy.force bench_placement))
let bench_rules =
  lazy (C.Rule_generator.build (Lazy.force bench_scenario) (Lazy.force bench_assignment))

let test_optimize =
  Test.make ~name:"optimization-engine (internet2, 12 classes)"
    (Staged.stage (fun () ->
         ignore (C.Optimization_engine.solve (Lazy.force bench_scenario))))

let test_decompose =
  Test.make ~name:"sub-class decomposition (one class)"
    (Staged.stage (fun () ->
         let s = Lazy.force bench_scenario in
         let p = Lazy.force bench_placement in
         let c = s.C.Types.classes.(0) in
         ignore (C.Subclass.decompose c p.C.Optimization_engine.distribution.(0))))

let test_rulegen =
  Test.make ~name:"rule generation (all classes)"
    (Staged.stage (fun () ->
         ignore
           (C.Rule_generator.build (Lazy.force bench_scenario)
              (Lazy.force bench_assignment))))

let test_walk =
  Test.make ~name:"packet walk (one flow)"
    (Staged.stage (fun () ->
         let s = Lazy.force bench_scenario in
         let built = Lazy.force bench_rules in
         let c = s.C.Types.classes.(0) in
         let src_ip = c.C.Types.src_block.C.Types.Prefix.addr in
         ignore
           (Apple_dataplane.Walk.run built.C.Rule_generator.network
              ~path:(Array.to_list c.C.Types.path)
              ~cls:c.C.Types.id ~src_ip ())))

let test_atoms =
  Test.make ~name:"atomic predicates (6 predicates)"
    (Staged.stage (fun () ->
         let module P = Apple_classifier.Predicate in
         let e = P.env () in
         let preds =
           [
             P.src_prefix e "10.0.0.0" 8;
             P.src_prefix e "10.1.0.0" 16;
             P.dst_prefix e "192.168.0.0" 16;
             P.proto e 6;
             P.dst_port e 80;
             P.dst_port_range e 1000 2000;
           ]
         in
         ignore (Apple_classifier.Atoms.compute e preds)))

let test_chash =
  Test.make ~name:"consistent-hash assign (one packet)"
    (Staged.stage
       (let ring =
          Apple_classifier.Consistent_hash.create ~weights:[| 0.3; 0.3; 0.4 |]
        in
        let packet =
          {
            Apple_classifier.Header.src_ip = 0x0A000001;
            dst_ip = 0xC0A80101;
            proto = 6;
            src_port = 1234;
            dst_port = 80;
          }
        in
        fun () -> ignore (Apple_classifier.Consistent_hash.assign ring packet)))

let test_simplex_small =
  Test.make ~name:"simplex (20x30 covering LP)"
    (Staged.stage
       (let build () =
          let module M = Apple_lp.Model in
          let t = M.create () in
          let rng = Rng.create 5 in
          let vars =
            Array.init 30 (fun _ -> M.add_var t ~obj:(1.0 +. Rng.uniform rng) ())
          in
          for _ = 1 to 20 do
            let terms =
              Array.to_list (Array.map (fun v -> (0.5 +. Rng.uniform rng, v)) vars)
            in
            M.add_constraint t terms M.Ge (10.0 +. Rng.float rng 10.0)
          done;
          t
        in
        let model = build () in
        fun () -> ignore (Apple_lp.Model.solve_lp model)))

let test_drfq =
  Test.make ~name:"DRFQ enqueue+dequeue (one packet)"
    (Staged.stage
       (let s = Apple_sched.Drfq.create ~resources:[| "cpu"; "nic" |] in
        let f =
          Apple_sched.Drfq.add_flow s ~name:"bench" ~cost_per_kb:[| 1e-4; 2e-4 |]
        in
        fun () ->
          Apple_sched.Drfq.enqueue s f ~bytes:1024;
          ignore (Apple_sched.Drfq.dequeue s)))

let run_micro () =
  print_endline "== Micro-benchmarks (Bechamel, monotonic clock) ==";
  let tests =
    [
      test_simplex_small;
      test_decompose;
      test_rulegen;
      test_walk;
      test_atoms;
      test_chash;
      test_drfq;
      test_optimize;
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:300 ~stabilize:true ~quota:(Time.second 1.0) ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (ns :: _) ->
              let pretty =
                if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
                else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
                else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
                else Printf.sprintf "%.0f ns" ns
              in
              Printf.printf "%-45s %12s / run\n%!" name pretty
          | Some [] | None -> Printf.printf "%-45s (no estimate)\n%!" name)
        results)
    tests

let () =
  Printf.printf
    "APPLE reproduction benchmarks (seed=%d scale=%.2f)\n\
     =================================================\n\n%!"
    seed scale;
  if wants "paper" then reproduce_paper ();
  if wants "ablations" then run_ablations ();
  if wants "jobs" then run_jobs ();
  if wants "micro" then run_micro ();
  print_endline "\nbench: done"
