(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the serial-vs-parallel jobs study, then runs Bechamel
   micro-benchmarks on the hot kernels.

     dune exec bench/main.exe                 # full paper scale
     APPLE_BENCH_SCALE=0.05 dune exec bench/main.exe   # quick smoke run
     APPLE_BENCH_ONLY=jobs dune exec bench/main.exe    # one section
     dune exec bench/main.exe -- table5 --json bench.json

   Positional arguments select what runs: a section (paper | ablations |
   jobs | failover | soak | slice | profile | dataplane | micro) or an
   individual artifact (table1 | table3 | table4 | table5 | fig6 ... fig12).  Without arguments,
   APPLE_BENCH_ONLY filters sections (comma-separated); unknown names in
   either place abort with the valid vocabulary.  --json FILE
   additionally writes a BENCH_core.json snapshot of the scalar metrics
   (schema documented in EXPERIMENTS.md).  One experiment driver per
   artifact lives in Apple_core.Experiments; this harness prints them all
   and appends kernel timings. *)

module C = Apple_core
module B = Apple_topology.Builders
module Tr = Apple_traffic
module Rng = Apple_prelude.Rng
module T = Apple_telemetry.Telemetry
module Trace = Apple_trace.Trace

(* Phase self-time shares recorded by [run_profile]; written into the
   snapshot as the apple-profile/1 block. *)
let profile_phases : Trace.phase list ref = ref []

let scale =
  match Sys.getenv_opt "APPLE_BENCH_SCALE" with
  | Some s -> (try float_of_string s with Failure _ -> 1.0)
  | None -> 1.0

let seed =
  match Sys.getenv_opt "APPLE_BENCH_SEED" with
  | Some s -> (try int_of_string s with Failure _ -> 20160627)
  | None -> 20160627

(* --- command line --------------------------------------------------- *)

let section_names =
  [ "paper"; "ablations"; "jobs"; "micro"; "failover"; "soak"; "slice";
    "profile"; "dataplane" ]

let experiment_names =
  [ "table1"; "table3"; "table4"; "table5"; "fig6"; "fig7"; "fig8"; "fig9";
    "fig10"; "fig11"; "fig12" ]

(* Positional arguments win; otherwise APPLE_BENCH_ONLY="paper,jobs"
   filters sections.  Unknown names — in either place — abort instead of
   silently running nothing (Apple_bench_args validates both). *)
let args =
  match
    Apple_bench_args.Args.parse ~section_names ~experiment_names
      ~argv:(List.tl (Array.to_list Sys.argv))
      ~only:(Sys.getenv_opt "APPLE_BENCH_ONLY")
  with
  | Ok t -> t
  | Error msg ->
      prerr_endline msg;
      exit 2

let json_path = args.Apple_bench_args.Args.json
let wants = Apple_bench_args.Args.wants args

(* --- BENCH_core.json snapshot --------------------------------------- *)

(* experiment id -> flat (metric, value) rows, in run order. *)
let snapshot : (string * (string * float) list) list ref = ref []

let record id metrics =
  if json_path <> None then snapshot := (id, metrics) :: !snapshot

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let json_num v =
  if Float.is_finite v then Printf.sprintf "%.9g" v else "null"

let write_snapshot path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"apple-bench-core/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %s,\n" (json_num scale));
  Buffer.add_string buf "  \"experiments\": {\n";
  let exps = List.rev !snapshot in
  List.iteri
    (fun i (id, metrics) ->
      Buffer.add_string buf (Printf.sprintf "    \"%s\": {" (json_escape id));
      List.iteri
        (fun j (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s\"%s\": %s"
               (if j = 0 then "" else ", ")
               (json_escape k) (json_num v)))
        metrics;
      Buffer.add_string buf
        (if i = List.length exps - 1 then "}\n" else "},\n"))
    exps;
  Buffer.add_string buf "  },\n";
  (* Phase budgets (apple-profile/1): per-phase self-time shares from
     the traced profile workload, one phase per line — consumed by
     tools/check_phase_budgets.sh as the regression baseline. *)
  if !profile_phases <> [] then begin
    Buffer.add_string buf "  \"profile\": {\n";
    Buffer.add_string buf "    \"schema\": \"apple-profile/1\",\n";
    Buffer.add_string buf "    \"phases\": {\n";
    let ps = !profile_phases in
    List.iteri
      (fun i (p : Apple_trace.Trace.phase) ->
        Buffer.add_string buf
          (Printf.sprintf
             "      \"%s\": {\"count\": %d, \"self_seconds\": %s, \"share\": \
              %s}%s\n"
             (json_escape p.Apple_trace.Trace.ph_cat)
             p.Apple_trace.Trace.ph_count
             (json_num p.Apple_trace.Trace.ph_self)
             (json_num p.Apple_trace.Trace.ph_share)
             (if i = List.length ps - 1 then "" else ",")))
      ps;
    Buffer.add_string buf "    }\n";
    Buffer.add_string buf "  },\n"
  end;
  (* Pipeline-wide telemetry: every counter, plus pool gauges. *)
  Buffer.add_string buf "  \"counters\": {";
  List.iteri
    (fun i (n, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\"%s\": %d" (if i = 0 then "" else ", ")
           (json_escape n) v))
    (T.counters ());
  Buffer.add_string buf "},\n";
  Buffer.add_string buf "  \"gauges\": {";
  List.iteri
    (fun i (n, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\"%s\": %s" (if i = 0 then "" else ", ")
           (json_escape n) (json_num v)))
    (T.gauges ());
  Buffer.add_string buf "}\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "bench: wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures.                             *)

(* Run one artifact, printing its table and recording raw scalars when
   the driver exposes them. *)
let run_artifact opts name =
  let print = C.Experiments.print in
  match name with
  | "table1" -> print (C.Experiments.table1 opts)
  | "table3" -> print (C.Experiments.table3 opts)
  | "table4" -> print (C.Experiments.table4 opts)
  | "table5" ->
      let rendered, raw = C.Experiments.table5 opts in
      print rendered;
      record "table5"
        (List.map (fun (topo, s) -> (topo ^ ".lp_solve_seconds", s)) raw)
  | "fig6" -> print (C.Experiments.fig6 opts)
  | "fig7" -> print (C.Experiments.fig7 opts)
  | "fig8" -> print (C.Experiments.fig8 opts)
  | "fig9" -> print (C.Experiments.fig9 opts)
  | "fig10" ->
      let rendered, raw = C.Experiments.fig10 opts in
      print rendered;
      record "fig10"
        (List.concat_map
           (fun (topo, b) ->
             [
               (topo ^ ".reduction_q1", b.Apple_prelude.Stats.q1);
               (topo ^ ".reduction_median", b.Apple_prelude.Stats.med);
               (topo ^ ".reduction_q3", b.Apple_prelude.Stats.q3);
             ])
           raw)
  | "fig11" ->
      let rendered, raw = C.Experiments.fig11 opts in
      print rendered;
      record "fig11"
        (List.concat_map
           (fun (topo, apple, ingress) ->
             [
               (topo ^ ".apple_cores", float_of_int apple);
               (topo ^ ".ingress_cores", float_of_int ingress);
             ])
           raw)
  | "fig12" ->
      let rendered, raw = C.Experiments.fig12 opts in
      print rendered;
      record "fig12"
        (List.concat_map
           (fun (topo, w, wo, extra) ->
             [
               (topo ^ ".loss_with_failover", w);
               (topo ^ ".loss_without_failover", wo);
               (topo ^ ".extra_cores", extra);
             ])
           raw)
  | other -> invalid_arg ("run_artifact: " ^ other)

let reproduce_paper opts = List.iter (run_artifact opts) experiment_names

let run_ablations opts =
  print_endline "---- ablations (beyond the paper's figures) ----\n";
  List.iter C.Experiments.print (C.Experiments.ablations opts)

(* Serial vs parallel: the per-class decomposition at several jobs
   values against the monolithic LP, plus the determinism check. *)
let run_jobs opts =
  print_endline "---- jobs study (APPLE_JOBS / --jobs) ----\n";
  Printf.printf "recommended_domain_count = %d\n\n%!"
    (Domain.recommended_domain_count ());
  let rendered, raw = C.Experiments.jobs_table opts in
  C.Experiments.print rendered;
  record "jobs"
    (List.concat_map
       (fun (topo, lp_s, per_jobs, identical) ->
         ((topo ^ ".lp_seconds", lp_s)
         :: (topo ^ ".identical", if identical then 1.0 else 0.0)
         :: List.map
              (fun (j, s) -> (Printf.sprintf "%s.jobs%d_seconds" topo j, s))
              per_jobs))
       raw)

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks on the framework's kernels.       *)

open Bechamel
open Toolkit

(* Pre-built inputs shared by the kernels (construction excluded from the
   measured region). *)
let bench_scenario =
  lazy
    (let named = B.internet2 () in
     let rng = Rng.create seed in
     let tm = Tr.Synth.gravity rng ~n:12 ~total:3000.0 in
     let config = { C.Scenario.default_config with C.Scenario.max_classes = 12 } in
     C.Scenario.build ~config ~seed named tm)

let bench_placement = lazy (C.Optimization_engine.solve (Lazy.force bench_scenario))
let bench_assignment =
  lazy (C.Subclass.assign (Lazy.force bench_scenario) (Lazy.force bench_placement))
let bench_rules =
  lazy (C.Rule_generator.build (Lazy.force bench_scenario) (Lazy.force bench_assignment))

let test_optimize =
  Test.make ~name:"optimization-engine (internet2, 12 classes)"
    (Staged.stage (fun () ->
         ignore (C.Optimization_engine.solve (Lazy.force bench_scenario))))

let test_decompose =
  Test.make ~name:"sub-class decomposition (one class)"
    (Staged.stage (fun () ->
         let s = Lazy.force bench_scenario in
         let p = Lazy.force bench_placement in
         let c = s.C.Types.classes.(0) in
         ignore (C.Subclass.decompose c p.C.Optimization_engine.distribution.(0))))

let test_rulegen =
  Test.make ~name:"rule generation (all classes)"
    (Staged.stage (fun () ->
         ignore
           (C.Rule_generator.build (Lazy.force bench_scenario)
              (Lazy.force bench_assignment))))

let test_walk =
  Test.make ~name:"packet walk (one flow)"
    (Staged.stage (fun () ->
         let s = Lazy.force bench_scenario in
         let built = Lazy.force bench_rules in
         let c = s.C.Types.classes.(0) in
         let src_ip = c.C.Types.src_block.C.Types.Prefix.addr in
         ignore
           (Apple_dataplane.Walk.run built.C.Rule_generator.network
              ~path:(Array.to_list c.C.Types.path)
              ~cls:c.C.Types.id ~src_ip ())))

let test_verify =
  Test.make ~name:"static verifier (internet2, 12 classes)"
    (Staged.stage (fun () ->
         ignore
           (Apple_verify.Verify.check (Lazy.force bench_scenario)
              (Lazy.force bench_assignment)
              (Lazy.force bench_rules))))

let test_atoms =
  Test.make ~name:"atomic predicates (6 predicates)"
    (Staged.stage (fun () ->
         let module P = Apple_classifier.Predicate in
         let e = P.env () in
         let preds =
           [
             P.src_prefix e "10.0.0.0" 8;
             P.src_prefix e "10.1.0.0" 16;
             P.dst_prefix e "192.168.0.0" 16;
             P.proto e 6;
             P.dst_port e 80;
             P.dst_port_range e 1000 2000;
           ]
         in
         ignore (Apple_classifier.Atoms.compute e preds)))

let test_chash =
  Test.make ~name:"consistent-hash assign (one packet)"
    (Staged.stage
       (let ring =
          Apple_classifier.Consistent_hash.create ~weights:[| 0.3; 0.3; 0.4 |]
        in
        let packet =
          {
            Apple_classifier.Header.src_ip = 0x0A000001;
            dst_ip = 0xC0A80101;
            proto = 6;
            src_port = 1234;
            dst_port = 80;
          }
        in
        fun () -> ignore (Apple_classifier.Consistent_hash.assign ring packet)))

let test_simplex_small =
  Test.make ~name:"simplex (20x30 covering LP)"
    (Staged.stage
       (let build () =
          let module M = Apple_lp.Model in
          let t = M.create () in
          let rng = Rng.create 5 in
          let vars =
            Array.init 30 (fun _ -> M.add_var t ~obj:(1.0 +. Rng.uniform rng) ())
          in
          for _ = 1 to 20 do
            let terms =
              Array.to_list (Array.map (fun v -> (0.5 +. Rng.uniform rng, v)) vars)
            in
            M.add_constraint t terms M.Ge (10.0 +. Rng.float rng 10.0)
          done;
          t
        in
        let model = build () in
        fun () -> ignore (Apple_lp.Model.solve_lp model)))

let test_drfq =
  Test.make ~name:"DRFQ enqueue+dequeue (one packet)"
    (Staged.stage
       (let s = Apple_sched.Drfq.create ~resources:[| "cpu"; "nic" |] in
        let f =
          Apple_sched.Drfq.add_flow s ~name:"bench" ~cost_per_kb:[| 1e-4; 2e-4 |]
        in
        fun () ->
          Apple_sched.Drfq.enqueue s f ~bytes:1024;
          ignore (Apple_sched.Drfq.dequeue s)))

let run_failover opts =
  print_endline "---- failover under injected faults (chaos engine) ----\n";
  C.Experiments.print (Apple_chaos.Experiments.fig_failover opts)

(* Endurance smoke: a short soak run (same drill as the CI job) recording
   throughput, memory flatness and the invariant verdict.  The committed
   trajectory snapshot (BENCH_soak.json) comes from `apple soak
   --bench-json` at full scale — see the Makefile's `bench-snapshots`. *)
let run_soak () =
  print_endline "---- soak smoke (endurance harness) ----\n";
  let module Soak = Apple_soak.Soak in
  let epochs = max 48 (int_of_float (200.0 *. scale)) in
  let schedule =
    match
      Apple_chaos.Fault.parse
        "at 50 kill-instance hottest\n\
         at 75 link-down busiest\n\
         at 90 link-up busiest"
    with
    | Ok s -> s
    | Error e -> invalid_arg ("soak bench schedule: " ^ e)
  in
  let cfg =
    {
      (Soak.default_config (B.internet2 ())) with
      Soak.seed;
      epochs;
      schedule = (if epochs > 90 then schedule else []);
    }
  in
  match Soak.create cfg with
  | Error e -> invalid_arg ("soak bench: " ^ e)
  | Ok session ->
      let o = Soak.run session in
      Printf.printf
        "%d epoch(s): %d violation(s), %.0f epochs/sec, peak %d live words \
         (%s)\n\
         %!"
        o.Soak.epochs_run
        (List.length o.Soak.violations)
        o.Soak.epochs_per_sec o.Soak.peak_live_words
        (if o.Soak.mem_flat then "flat" else "NOT FLAT");
      record "soak"
        [
          ("epochs", float_of_int o.Soak.epochs_run);
          ("violations", float_of_int (List.length o.Soak.violations));
          ("mem_flat", if o.Soak.mem_flat then 1.0 else 0.0);
          ("peak_live_words", float_of_int o.Soak.peak_live_words);
          ("epochs_per_sec", o.Soak.epochs_per_sec);
        ]

(* Multi-tenant slicing: replay a seeded arrival/departure stream at
   several substrate scales and record how many slices each admits
   (deterministic), plus the mean wall-clock admission decision latency
   (machine-dependent, kept as a separate metric like lp_seconds). *)
let run_slice () =
  print_endline "---- slice admission (multi-tenant lifecycle) ----\n";
  let module Sl = Apple_slice in
  let events = max 8 (int_of_float (24.0 *. scale)) in
  let tr = Sl.Trace.synth ~seed ~events in
  let arrivals =
    List.length
      (List.filter
         (fun (e : Sl.Trace.entry) ->
           match e.Sl.Trace.event with
           | Sl.Trace.Arrive _ -> true
           | Sl.Trace.Depart _ -> false)
         tr.Sl.Trace.entries)
  in
  Printf.printf "%d event(s) (%d arrivals), internet2, gate on\n\n%!"
    (List.length tr.Sl.Trace.entries)
    arrivals;
  Printf.printf "%-12s %-9s %-9s %-9s %-10s %s\n%!" "cores/host" "admitted"
    "rejected" "residents" "verified" "ms/decision";
  let metrics = ref [] in
  List.iter
    (fun cores ->
      let t0 = Unix.gettimeofday () in (* lint: L5 — decision-latency measurement; the bench metric itself *)
      let _mgr, o = Sl.Trace.run ~host_cores:cores (B.internet2 ()) tr in
      let dt = Unix.gettimeofday () -. t0 in (* lint: L5 — decision-latency measurement; the bench metric itself *)
      let decisions = o.Sl.Trace.events - o.Sl.Trace.ignored in
      let ms_per =
        if decisions = 0 then 0.0
        else dt *. 1000.0 /. float_of_int decisions
      in
      let rejected =
        o.Sl.Trace.rejected_capacity + o.Sl.Trace.rejected_tag_space
        + o.Sl.Trace.rejected_verifier
      in
      Printf.printf "%-12d %-9d %-9d %-9d %-10d %.1f\n%!" cores
        o.Sl.Trace.admitted rejected o.Sl.Trace.residents
        o.Sl.Trace.verifier_passes ms_per;
      metrics :=
        (Printf.sprintf "cores%d.decision_ms" cores, ms_per)
        :: (Printf.sprintf "cores%d.verifier_passes" cores,
            float_of_int o.Sl.Trace.verifier_passes)
        :: (Printf.sprintf "cores%d.residents" cores,
            float_of_int o.Sl.Trace.residents)
        :: (Printf.sprintf "cores%d.rejected" cores, float_of_int rejected)
        :: (Printf.sprintf "cores%d.admitted" cores,
            float_of_int o.Sl.Trace.admitted)
        :: !metrics)
    [ 16; 32; 64 ];
  record "slice" (("events", float_of_int (List.length tr.Sl.Trace.entries))
                  :: List.rev !metrics)

let run_micro () =
  print_endline "== Micro-benchmarks (Bechamel, monotonic clock) ==";
  let tests =
    [
      test_simplex_small;
      test_decompose;
      test_rulegen;
      test_walk;
      test_verify;
      test_atoms;
      test_chash;
      test_drfq;
      test_optimize;
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:300 ~stabilize:true ~quota:(Time.second 1.0) ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      (* lint: L3 — bechamel result table has a single entry per test *)
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (ns :: _) ->
              let pretty =
                if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
                else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
                else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
                else Printf.sprintf "%.0f ns" ns
              in
              Printf.printf "%-45s %12s / run\n%!" name pretty
          | Some [] | None -> Printf.printf "%-45s (no estimate)\n%!" name)
        results)
    tests

(* Compiled dataplane vs the reference interpreter: the same packet
   walks over Internet2-scale rule tables under both engines.  The
   differential QCheck suite (test/test_dataplane_diff.ml) holds the two
   engines equal on results, counters and flight events; this section
   holds the compiled path to its raw-speed goal (>= 10x on the full
   walk).  Throughput is wall-clock (machine-dependent, like
   lp_seconds); the request count and table sizes are deterministic. *)
let run_dataplane () =
  print_endline "---- dataplane (compiled tables vs interpreter) ----\n";
  let module Dp = Apple_dataplane.Compiled in
  let module Walk = Apple_dataplane.Walk in
  let topo = B.internet2 () in
  let n = Apple_topology.Graph.num_nodes topo.B.graph in
  let rng = Rng.create seed in
  let tm = Tr.Synth.gravity rng ~n ~total:6000.0 in
  let config =
    { C.Scenario.default_config with C.Scenario.max_classes = 120 }
  in
  let scenario = C.Scenario.build ~config ~seed topo tm in
  let ctrl = C.Controller.create scenario in
  let report = C.Controller.run_epoch ctrl in
  let asg =
    match C.Controller.assignment ctrl with
    | Some a -> a
    | None -> invalid_arg "dataplane bench: epoch left no assignment"
  in
  let built = report.C.Controller.rules in
  let network = built.C.Rule_generator.network in
  (* One walk request per sub-class representative prefix — the same
     population the verifier walks, covering every installed table. *)
  let reqs = ref [] in
  Array.iter
    (fun c ->
      let subs =
        List.filter
          (fun s -> s.C.Subclass.class_id = c.C.Types.id)
          asg.C.Subclass.subclasses
      in
      if subs <> [] then begin
        let prefixes =
          C.Rule_generator.subclass_prefixes c subs
            ~depth:built.C.Rule_generator.split_depth
        in
        List.iteri
          (fun idx _sub ->
            match prefixes.(idx) with
            | [] -> ()
            | p :: _ ->
                reqs :=
                  {
                    Walk.rq_path = Array.to_list c.C.Types.path;
                    rq_cls = c.C.Types.id;
                    rq_src_ip = p.C.Types.Prefix.addr;
                    rq_start_in_host = false;
                    rq_flow = List.length !reqs;
                  }
                  :: !reqs)
          subs
      end)
    scenario.C.Types.classes;
  let requests = Array.of_list (List.rev !reqs) in
  if Array.length requests = 0 then
    invalid_arg "dataplane bench: no walkable sub-classes";
  let tcam = Apple_dataplane.Tcam.total_tcam network in
  let rounds = max 4 (int_of_float (200.0 *. scale)) in
  let measure mode =
    let saved = Dp.mode () in
    Dp.set_mode mode;
    Fun.protect ~finally:(fun () -> Dp.set_mode saved) @@ fun () ->
    (* One untimed pass warms the caches, so compile time (reported
       separately via Dp.stats) never skews the steady-state rate. *)
    ignore (Walk.run_batch network ~requests ());
    let t0 = Unix.gettimeofday () in (* lint: L5 — throughput measurement; the bench metric itself *)
    for _ = 1 to rounds do
      ignore (Walk.run_batch network ~requests ())
    done;
    let dt = Unix.gettimeofday () -. t0 in (* lint: L5 — throughput measurement; the bench metric itself *)
    float_of_int (rounds * Array.length requests) /. dt
  in
  Dp.reset_stats ();
  let interp = measure Dp.Interp in
  let compiled = measure Dp.Compiled in
  let compiles, _ = Dp.stats () in
  let speedup = compiled /. interp in
  (* Per-lookup stress on the paper's no-tagging strawman: every class
     classified at one central table, on AS-3679 (the evaluation's
     largest topology — ~600 classes).  This is the regime the paper's
     tcam_without_tagging counts; the per-switch walk above carries
     fixed per-hop overhead shared by both engines, while this isolates
     a single provider-scale table lookup, where the compiled dispatch
     must clear the 10x raw-speed goal over the interpreter's linear
     scan. *)
  let module Tcam = Apple_dataplane.Tcam in
  let module Tag = Apple_dataplane.Tag in
  let module Rule = Apple_dataplane.Rule in
  let stress_topo = B.as3679 () in
  let sn = Apple_topology.Graph.num_nodes stress_topo.B.graph in
  let stm = Tr.Synth.gravity (Rng.create seed) ~n:sn ~total:12000.0 in
  let sconfig =
    { C.Scenario.default_config with C.Scenario.max_classes = 400 }
  in
  let sscenario = C.Scenario.build ~config:sconfig ~seed stress_topo stm in
  let merged = Tcam.create ~switch:0 in
  let probes = ref [] in
  Array.iter
    (fun c ->
      let p = c.C.Types.src_block in
      probes := p.C.Types.Prefix.addr :: !probes;
      Tcam.add_phys merged
        {
          Rule.priority = 100;
          pmatch =
            { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ p ] };
          action =
            Rule.Tag_and_forward
              { subclass = c.C.Types.id; host = Tag.Fin };
        })
    sscenario.C.Types.classes;
  let probes = Array.of_list (List.rev !probes) in
  let merged_entries = Tcam.tcam_entries merged in
  let tags = Tag.fresh () in
  let lk_rounds = rounds * 50 in
  let measure_lookup use_compiled =
    let lookup ip =
      if use_compiled then Dp.lookup_phys_entry merged tags ~src_ip:ip
      else Tcam.lookup_phys_entry merged tags ~src_ip:ip
    in
    Array.iter (fun ip -> ignore (lookup ip)) probes;
    let t0 = Unix.gettimeofday () in (* lint: L5 — throughput measurement; the bench metric itself *)
    for _ = 1 to lk_rounds do
      Array.iter (fun ip -> ignore (lookup ip)) probes
    done;
    let dt = Unix.gettimeofday () -. t0 in (* lint: L5 — throughput measurement; the bench metric itself *)
    float_of_int (lk_rounds * Array.length probes) /. dt
  in
  let lk_interp = measure_lookup false in
  let lk_compiled = measure_lookup true in
  let lk_speedup = lk_compiled /. lk_interp in
  Printf.printf
    "internet2: %d request(s) x %d round(s), %d TCAM entries, %d table \
     compile(s)\n"
    (Array.length requests) rounds tcam compiles;
  Printf.printf "  walk  interp:   %10.0f walks/sec\n" interp;
  Printf.printf "  walk  compiled: %10.0f walks/sec\n" compiled;
  Printf.printf "  walk  speedup:  %10.1fx\n" speedup;
  Printf.printf "no-tagging strawman table (as3679, %d entries, one switch):\n"
    merged_entries;
  Printf.printf "  lookup interp:   %10.0f lookups/sec\n" lk_interp;
  Printf.printf "  lookup compiled: %10.0f lookups/sec\n" lk_compiled;
  Printf.printf "  lookup speedup:  %10.1fx\n\n%!" lk_speedup;
  record "dataplane"
    [
      ("requests", float_of_int (Array.length requests));
      ("rounds", float_of_int rounds);
      ("tcam_entries", float_of_int tcam);
      ("compiles", float_of_int compiles);
      ("interp_walks_per_sec", interp);
      ("compiled_walks_per_sec", compiled);
      ("walk_speedup", speedup);
      ("strawman_entries", float_of_int merged_entries);
      ("interp_lookups_per_sec", lk_interp);
      ("compiled_lookups_per_sec", lk_compiled);
      ("lookup_speedup", lk_speedup);
    ]

(* Phase-budget profile: one gated per-class epoch plus the full
   verification walk on Internet2 under the causal tracer, attributing
   wall self time to pipeline phases.  The workload is {e fixed-size}
   (independent of APPLE_BENCH_SCALE) so the committed shares in
   BENCH_core.json compare like-for-like across snapshot refreshes —
   tools/check_phase_budgets.sh re-runs this section and fails when a
   phase's share regresses beyond its slack. *)
let run_profile () =
  print_endline "---- phase profile (trace-attributed self time) ----\n";
  let module V = Apple_verify.Verify in
  let topo = B.internet2 () in
  let n = Apple_topology.Graph.num_nodes topo.B.graph in
  let rng = Rng.create seed in
  let tm = Tr.Synth.gravity rng ~n ~total:6000.0 in
  let config =
    { C.Scenario.default_config with C.Scenario.max_classes = 60 }
  in
  let scenario = C.Scenario.build ~config ~seed topo tm in
  Trace.reset ();
  Trace.set_enabled true;
  let ctrl =
    C.Controller.create ~engine:`Per_class ~gate:V.gate scenario
  in
  ignore (C.Controller.run_epoch ctrl);
  (match C.Controller.verify ctrl with
  | Ok () -> ()
  | Error e -> invalid_arg ("profile bench: verify failed: " ^ e));
  Trace.set_enabled false;
  let phases = Trace.phases ~mode:Trace.Wall () in
  profile_phases := phases;
  List.iter
    (fun (p : Trace.phase) ->
      Printf.printf "  %-10s %5d span(s)  self %.6f s  share %5.1f%%\n"
        p.Trace.ph_cat p.Trace.ph_count p.Trace.ph_self
        (100.0 *. p.Trace.ph_share))
    phases;
  print_newline ()

let () =
  Printf.printf
    "APPLE reproduction benchmarks (seed=%d scale=%.2f)\n\
     =================================================\n\n%!"
    seed scale;
  if json_path <> None then T.set_enabled true;
  let opts = { C.Experiments.seed; scale } in
  if wants "paper" then reproduce_paper opts
  else
    (* Individual artifacts (skipped when the whole paper section ran). *)
    List.iter
      (fun name -> if wants name then run_artifact opts name)
      experiment_names;
  if wants "ablations" then run_ablations opts;
  if wants "jobs" then run_jobs opts;
  if wants "failover" then run_failover opts;
  if wants "soak" then run_soak ();
  if wants "slice" then run_slice ();
  if wants "dataplane" then run_dataplane ();
  if wants "micro" then run_micro ();
  if wants "profile" then run_profile ();
  Option.iter write_snapshot json_path;
  print_endline "\nbench: done"
