(* Argument parsing for the benchmark harness, split out as a library so
   the unit tests can exercise it without spawning the executable.

   Selection comes from two places, positional arguments winning:

   - positional names: a section or an individual artifact;
   - the APPLE_BENCH_ONLY environment variable: comma-separated section
     names.

   Both are validated against the caller's name lists.  An unknown name
   is an [Error] naming the offender and the valid vocabulary — never a
   silent no-op: a typo like APPLE_BENCH_ONLY=mirco must fail loudly
   instead of quietly running nothing. *)

type t = {
  json : string option;  (** [--json FILE]: write a BENCH_core.json snapshot *)
  filter : string list option;
      (** [None] = run everything; [Some names] = run just these *)
}

let valid_vocabulary ~section_names ~experiment_names =
  Printf.sprintf "valid sections:    %s\nvalid experiments: %s"
    (String.concat " " section_names)
    (String.concat " " experiment_names)

(* [argv] excludes the executable name.  [only] is the raw value of
   APPLE_BENCH_ONLY (ignored when positional names are present). *)
let parse ~section_names ~experiment_names ~argv ~only =
  let vocab () = valid_vocabulary ~section_names ~experiment_names in
  let known name =
    List.exists (String.equal name) section_names
    || List.exists (String.equal name) experiment_names
  in
  let rec loop json names = function
    | [] -> Ok (json, List.rev names)
    | "--json" :: path :: rest -> (
        match json with
        | Some _ -> Error "bench: --json given twice"
        | None -> loop (Some path) names rest)
    | [ "--json" ] -> Error "bench: --json requires a file argument"
    | name :: rest ->
        if known name then loop json (name :: names) rest
        else
          Error
            (Printf.sprintf "bench: unknown argument %S\n%s" name (vocab ()))
  in
  match loop None [] argv with
  | Error _ as e -> e
  | Ok (json, requested) -> (
      match requested with
      | _ :: _ -> Ok { json; filter = Some requested }
      | [] -> (
          match only with
          | None | Some "" -> Ok { json; filter = None }
          | Some s -> (
              let names =
                String.split_on_char ',' (String.lowercase_ascii s)
                |> List.map String.trim
                |> List.filter (fun n -> String.length n > 0)
              in
              match
                List.find_opt
                  (fun n -> not (List.exists (String.equal n) section_names))
                  names
              with
              | Some bad ->
                  Error
                    (Printf.sprintf
                       "bench: unknown section %S in APPLE_BENCH_ONLY\n%s" bad
                       (vocab ()))
              | None -> Ok { json; filter = Some names })))

let wants t name =
  match t.filter with
  | None -> true
  | Some l -> List.exists (String.equal name) l
