(* Chaos engine: schedule language, fault-mask semantics, backoff,
   repair/heal end-to-end, and the determinism + monotonicity
   properties. *)

module C = Apple_core
module Ch = Apple_chaos
module B = Apple_topology.Builders
module Rng = Apple_prelude.Rng
module Instance = Apple_vnf.Instance
module Lifecycle = Apple_vnf.Lifecycle
module Failmask = Apple_dataplane.Failmask
module Walk = Apple_dataplane.Walk
module Obs = Apple_obs.Counters
module Flight = Apple_obs.Flight
module V = Apple_verify.Verify

let check = Alcotest.check
let fail = Alcotest.fail

(* ---- schedule language ------------------------------------------- *)

let drill_text =
  "# drill\n\
   at 0.5 kill-instance hottest\n\
   at 0.8 link-down busiest\n\
   at 1.6 link-up busiest\n\
   at 2.0 switch-crash 3\n\
   at 2.8 switch-restart 3\n\
   at 3.2 tcam-loss busiest 0.3\n\
   at 3.6 poller-blackout 0.4\n"

let parse_ok text =
  match Ch.Fault.parse text with
  | Ok s -> s
  | Error m -> fail ("parse failed: " ^ m)

let test_parse_roundtrip () =
  let s = parse_ok drill_text in
  check Alcotest.int "events" 7 (List.length s);
  let printed = Ch.Fault.to_string s in
  let s2 = parse_ok printed in
  check Alcotest.string "roundtrip" printed (Ch.Fault.to_string s2)

let test_parse_matches_example () =
  (* The example file and the goldens drill must not drift apart.
     dune runtest runs from the test dir; dune exec from the root. *)
  let path =
    List.find Sys.file_exists
      [ "../examples/chaos_internet2.sched"; "examples/chaos_internet2.sched" ]
  in
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let from_file = parse_ok text in
  check Alcotest.string "example file = goldens drill"
    (Ch.Fault.to_string Ch.Goldens.drill_schedule)
    (Ch.Fault.to_string from_file)

let test_parse_rejects () =
  (match Ch.Fault.parse "at x kill-instance hottest" with
  | Error m ->
      check Alcotest.bool "line numbered" true
        (String.length m >= 6 && String.sub m 0 6 = "line 1")
  | Ok _ -> fail "bad time accepted");
  (match Ch.Fault.parse "at 1.0 link-up 2-3" with
  | Error _ -> ()
  | Ok _ -> fail "unpaired link-up accepted");
  (match Ch.Fault.parse "at 1.0 tcam-loss 3 1.5" with
  | Error _ -> ()
  | Ok _ -> fail "probability 1.5 accepted");
  (match Ch.Fault.parse "at 1.0 kill-instance busiest" with
  | Error _ -> ()
  | Ok _ -> fail "kill busiest accepted");
  match Ch.Fault.parse "at 1.0 frobnicate 3" with
  | Error _ -> ()
  | Ok _ -> fail "unknown kind accepted"

let test_add_keeps_order () =
  let s =
    List.fold_left
      (fun s (at, f) -> Ch.Fault.add s ~at f)
      Ch.Fault.empty
      [
        (2.0, Ch.Fault.Poller_blackout 0.1);
        (0.5, Ch.Fault.Kill_instance Ch.Fault.Hottest);
        (2.0, Ch.Fault.Poller_blackout 0.2);
        (1.0, Ch.Fault.Kill_instance (Ch.Fault.Id 3));
      ]
  in
  let times = List.map (fun e -> e.Ch.Fault.at) s in
  check (Alcotest.list (Alcotest.float 1e-9)) "sorted" [ 0.5; 1.0; 2.0; 2.0 ]
    times;
  (* Stable: the 0.1 blackout was added before the 0.2 one. *)
  (match List.filter_map (function
           | { Ch.Fault.fault = Ch.Fault.Poller_blackout d; _ } -> Some d
           | _ -> None)
           s
   with
  | [ a; b ] ->
      check (Alcotest.float 1e-9) "stable first" 0.1 a;
      check (Alcotest.float 1e-9) "stable second" 0.2 b
  | _ -> fail "expected two blackouts");
  match Ch.Fault.validate s with
  | Ok () -> ()
  | Error m -> fail ("valid schedule rejected: " ^ m)

let test_validate_rejects () =
  let one at f = Ch.Fault.add Ch.Fault.empty ~at f in
  let expect_invalid label s =
    match Ch.Fault.validate s with
    | Error _ -> ()
    | Ok () -> fail (label ^ " accepted")
  in
  expect_invalid "negative time" (one (-1.0) (Ch.Fault.Poller_blackout 0.1));
  expect_invalid "hottest link"
    (one 1.0 (Ch.Fault.Link_down Ch.Fault.Hottest));
  expect_invalid "pair switch"
    (one 1.0 (Ch.Fault.Switch_crash (Ch.Fault.Pair (1, 2))));
  expect_invalid "restart before crash"
    (one 1.0 (Ch.Fault.Switch_restart (Ch.Fault.Id 4)));
  expect_invalid "zero blackout" (one 1.0 (Ch.Fault.Poller_blackout 0.0))

(* ---- fault-mask semantics (Walk + Blackhole flight pinning) ------- *)

(* One installed epoch on the tiny 4-node line: rules, class path and a
   representative source address per class. *)
let tiny_epoch () =
  let s = Helpers.tiny_scenario () in
  let controller = C.Controller.create ~gate:V.gate s in
  let report = C.Controller.run_epoch controller in
  (s, controller, report)

let walk_with_mask ~mask ~flow (s : C.Types.scenario) report =
  let c = s.C.Types.classes.(0) in
  Walk.run report.C.Controller.rules.C.Rule_generator.network
    ~path:(Array.to_list c.C.Types.path)
    ~cls:c.C.Types.id
    ~src_ip:c.C.Types.src_block.C.Types.Prefix.addr
    ~flow ~mask ()

let last_blackhole () =
  match
    List.rev
      (List.filter
         (fun e -> e.Flight.kind = Flight.Blackhole)
         (Flight.events ()))
  with
  | e :: _ -> e
  | [] -> fail "no Blackhole flight event recorded"

let with_flight f =
  Obs.set_enabled true;
  Flight.clear ();
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let test_walk_mask_faults () =
  let s, _controller, report = tiny_epoch () in
  let c = s.C.Types.classes.(0) in
  let path = c.C.Types.path in
  (* Clear mask: the walk succeeds. *)
  let mask = Failmask.create () in
  (match walk_with_mask ~mask ~flow:9 s report with
  | Ok _ -> ()
  | Error e -> fail (Format.asprintf "clear mask walk failed: %a" Walk.pp_error e));
  (* Dead link between the first two hops: Link_dead, reason 0, pinned
     to the upstream switch with the peer as detail. *)
  with_flight (fun () ->
      Failmask.fail_link mask path.(0) path.(1);
      (match walk_with_mask ~mask ~flow:9 s report with
      | Error (Walk.Link_dead { from; to_ }) ->
          check Alcotest.int "link from" path.(0) from;
          check Alcotest.int "link to" path.(1) to_
      | Ok _ -> fail "walk crossed a dead link"
      | Error e -> fail (Format.asprintf "wrong error: %a" Walk.pp_error e));
      let e = last_blackhole () in
      check Alcotest.int "flow" 9 e.Flight.a;
      check Alcotest.int "switch" path.(0) e.Flight.b;
      check Alcotest.int "peer" path.(1) e.Flight.c;
      check Alcotest.int "reason link" 0 e.Flight.d);
  Failmask.restore_link mask path.(0) path.(1);
  (* Crashed switch: Switch_dead, reason 1. *)
  with_flight (fun () ->
      Failmask.fail_switch mask path.(1);
      (match walk_with_mask ~mask ~flow:10 s report with
      | Error (Walk.Switch_dead sw) -> check Alcotest.int "dead switch" path.(1) sw
      | Ok _ -> fail "walk crossed a dead switch"
      | Error e -> fail (Format.asprintf "wrong error: %a" Walk.pp_error e));
      let e = last_blackhole () in
      check Alcotest.int "switch" path.(1) e.Flight.b;
      check Alcotest.int "reason switch" 1 e.Flight.d);
  Failmask.restore_switch mask path.(1);
  (* Dead instance: Instance_dead, reason 2, instance id as detail. *)
  with_flight (fun () ->
      match walk_with_mask ~mask ~flow:11 s report with
      | Ok trace ->
          let id =
            match trace.Walk.instances with
            | i :: _ -> i
            | [] -> fail "walk visited no instance"
          in
          Failmask.fail_instance mask id;
          (match walk_with_mask ~mask ~flow:11 s report with
          | Error (Walk.Instance_dead { instance; _ }) ->
              check Alcotest.int "dead instance" id instance
          | Ok _ -> fail "walk used a dead instance"
          | Error e -> fail (Format.asprintf "wrong error: %a" Walk.pp_error e));
          let e = last_blackhole () in
          check Alcotest.int "instance detail" id e.Flight.c;
          check Alcotest.int "reason instance" 2 e.Flight.d;
          Failmask.restore_instance mask id
      | Error e -> fail (Format.asprintf "setup walk failed: %a" Walk.pp_error e))

let test_walk_error_codes () =
  check Alcotest.int "link code" 5
    (Walk.error_code (Walk.Link_dead { from = 1; to_ = 2 }));
  check Alcotest.int "switch code" 6 (Walk.error_code (Walk.Switch_dead 3));
  check Alcotest.int "instance code" 7
    (Walk.error_code (Walk.Instance_dead { switch = 1; instance = 4 }))

(* ---- backoff ------------------------------------------------------ *)

let test_backoff_capping () =
  let policy =
    { C.Resource_orchestrator.base = 0.5; factor = 2.0; cap = 8.0 }
  in
  let delay a = C.Resource_orchestrator.backoff_delay ~policy ~attempt:a () in
  check (Alcotest.float 1e-9) "attempt 0" 0.5 (delay 0);
  check (Alcotest.float 1e-9) "attempt 1" 1.0 (delay 1);
  check (Alcotest.float 1e-9) "attempt 3" 4.0 (delay 3);
  check (Alcotest.float 1e-9) "attempt 4 caps" 8.0 (delay 4);
  check (Alcotest.float 1e-9) "attempt 10 caps" 8.0 (delay 10);
  (* Monotone in the attempt number. *)
  for a = 0 to 9 do
    if delay (a + 1) < delay a -. 1e-12 then fail "backoff not monotone"
  done;
  match C.Resource_orchestrator.backoff_delay ~attempt:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> fail "negative attempt accepted"

let test_respawn_blackout () =
  let runs =
    C.Prototype.respawn_blackout ~boot:Lifecycle.Raw_clickos ~seed:3
      ~attempts:6 ()
  in
  check Alcotest.int "runs" 6 (List.length runs);
  List.iter
    (fun r ->
      let expected =
        C.Resource_orchestrator.backoff_delay ~attempt:r.C.Prototype.attempt ()
      in
      check (Alcotest.float 1e-9) "backoff component" expected
        r.C.Prototype.backoff_s;
      check (Alcotest.float 1e-6) "blackout = backoff + boot + rules"
        (expected +. Lifecycle.raw_clickos_boot +. Lifecycle.rule_install_time)
        r.C.Prototype.blackout_s)
    runs

(* ---- end-to-end: kill the hottest instance mid-epoch -------------- *)

let hottest (state : C.Netstate.t) =
  C.Netstate.recompute_loads state;
  match
    List.sort
      (fun a b ->
        match Float.compare (Instance.offered b) (Instance.offered a) with
        | 0 -> Int.compare (Instance.id a) (Instance.id b)
        | c -> c)
      (C.Netstate.instances_in_use state)
  with
  | i :: _ -> i
  | [] -> fail "no instances in use"

let kill_heal_e2e named () =
  let s = Ch.Experiments.scenario_for Ch.Experiments.default_opts named in
  let controller = C.Controller.create ~gate:V.gate s in
  ignore (C.Controller.run_epoch controller);
  let state = Option.get (C.Controller.netstate controller) in
  let handler = Option.get (C.Controller.handler controller) in
  let dead = hottest state in
  Failmask.fail_instance state.C.Netstate.mask (Instance.id dead);
  ignore (C.Dynamic_handler.repair handler ~dead);
  check Alcotest.int "one open repair" 1
    (List.length (C.Dynamic_handler.pending_repairs handler));
  (* Mid-repair the stranded weight is visibly blackholed, never
     silently rerouted. *)
  if C.Netstate.blackholed_rate state < 0.0 then fail "negative blackhole";
  (* Respawn instantly (no world) and heal. *)
  let replacement =
    C.Resource_orchestrator.respawn state.C.Netstate.orchestrator dead
  in
  C.Controller.heal_instance controller ~dead ~replacement;
  check Alcotest.int "no open repairs" 0
    (List.length (C.Dynamic_handler.pending_repairs handler));
  check Alcotest.bool "mask clear" true (Failmask.is_clear state.C.Netstate.mask);
  (* Healed tables pass the static verifier gate... *)
  (match C.Controller.recheck_gate controller with
  | Ok () -> ()
  | Error m -> fail ("healed epoch rejected: " ^ m));
  (* ...and the packet walks prove no flow skips a chain stage on its
     (unchanged) path. *)
  match C.Controller.verify controller with
  | Ok () -> ()
  | Error m -> fail ("healed walks failed: " ^ m)

(* ---- determinism + monotonicity properties ------------------------ *)

let kill_schedule =
  Ch.Fault.add Ch.Fault.empty ~at:0.4 (Ch.Fault.Kill_instance Ch.Fault.Hottest)

let chaos_scenario named seed =
  Ch.Experiments.scenario_for { Ch.Experiments.default_opts with seed } named

let run_render ?jobs ?boot seed named =
  let config =
    {
      Ch.Chaos.default_config with
      Ch.Chaos.jobs;
      boot = Some (Option.value ~default:Lifecycle.Raw_clickos boot);
    }
  in
  Ch.Chaos.render
    (Ch.Chaos.run ~config ~seed ~schedule:Ch.Goldens.drill_schedule
       (chaos_scenario named seed))

let prop_deterministic =
  QCheck.Test.make ~name:"chaos run byte-identical across repeats and jobs"
    ~count:2
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let named = B.internet2 () in
      let a = run_render seed named in
      let b = run_render seed named in
      let c = run_render ~jobs:1 seed named in
      let d = run_render ~jobs:3 seed named in
      String.equal a b && String.equal a c && String.equal a d)

(* Forwarding paths of flows untouched by the fault survive the
   repair/heal cycle byte-for-byte (rules and instances).  Prefixes are
   positional within the class's sibling list, so compute them per class
   and key each itinerary by (class, sub). *)
let itineraries (s : C.Types.scenario) (asg : C.Subclass.assignment) report =
  let acc = ref [] in
  Array.iter
    (fun (c : C.Types.flow_class) ->
      let subs = Helpers.subclasses_of asg c.C.Types.id in
      if subs <> [] then begin
        let prefixes =
          C.Rule_generator.subclass_prefixes c subs
            ~depth:report.C.Controller.rules.C.Rule_generator.split_depth
        in
        List.iteri
          (fun idx (sub : C.Subclass.subclass) ->
            match prefixes.(idx) with
            | [] -> ()
            | p :: _ -> (
                match
                  Walk.run report.C.Controller.rules.C.Rule_generator.network
                    ~path:(Array.to_list c.C.Types.path)
                    ~cls:c.C.Types.id ~src_ip:p.C.Types.Prefix.addr ()
                with
                | Ok t ->
                    acc :=
                      ( (sub.C.Subclass.class_id, sub.C.Subclass.sub_id),
                        (t.Walk.visited, t.Walk.instances) )
                      :: !acc
                | Error e ->
                    fail (Format.asprintf "walk failed: %a" Walk.pp_error e)))
          subs
      end)
    s.C.Types.classes;
  List.rev !acc

let prop_unaffected_paths_stable =
  QCheck.Test.make
    ~name:"healing never reroutes flows the fault did not touch" ~count:2
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let s = chaos_scenario (B.internet2 ()) seed in
      let controller = C.Controller.create ~gate:V.gate s in
      let report = C.Controller.run_epoch controller in
      let state = Option.get (C.Controller.netstate controller) in
      let handler = Option.get (C.Controller.handler controller) in
      let asg = Option.get (C.Controller.assignment controller) in
      let dead = hottest state in
      let dead_id = Instance.id dead in
      let untouched sub =
        Array.for_all
          (function
            | Some inst -> Instance.id inst <> dead_id
            | None -> true)
          (C.Subclass.pinned asg sub)
      in
      let untouched_keys =
        List.filter_map
          (fun sub ->
            if untouched sub then
              Some (sub.C.Subclass.class_id, sub.C.Subclass.sub_id)
            else None)
          asg.C.Subclass.subclasses
      in
      let before = itineraries s asg report in
      Failmask.fail_instance state.C.Netstate.mask dead_id;
      ignore (C.Dynamic_handler.repair handler ~dead);
      let replacement =
        C.Resource_orchestrator.respawn state.C.Netstate.orchestrator dead
      in
      C.Controller.heal_instance controller ~dead ~replacement;
      let asg' = Option.get (C.Controller.assignment controller) in
      let report' = Option.get (C.Controller.last_report controller) in
      let after = itineraries s asg' report' in
      untouched_keys <> []
      && List.for_all
           (fun key ->
             match (List.assoc_opt key before, List.assoc_opt key after) with
             | Some (rules_b, insts_b), Some (rules_a, insts_a) ->
                 rules_b = rules_a && insts_b = insts_a
             | _ -> false)
           untouched_keys)

let recovery_of outcome =
  match outcome.Ch.Chaos.faults with
  | [ f ] -> (
      match f.Ch.Chaos.o_recovery with
      | Some r -> r
      | None -> fail "fault never healed")
  | _ -> fail "expected exactly one fault"

let prop_recovery_monotone_in_boot =
  QCheck.Test.make ~name:"recovery time monotone in VM boot delay" ~count:2
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let named = B.internet2 () in
      let s = chaos_scenario named seed in
      let run boot =
        let config =
          { Ch.Chaos.default_config with Ch.Chaos.boot = Some boot }
        in
        recovery_of (Ch.Chaos.run ~config ~seed ~schedule:kill_schedule s)
      in
      let clickos = run Lifecycle.Raw_clickos in
      let openstack = run Lifecycle.Openstack in
      let normal = run Lifecycle.Normal_vm in
      clickos <= openstack +. 1e-9 && openstack <= normal +. 1e-9)

let suite =
  [
    Alcotest.test_case "schedule parse roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "example file matches goldens drill" `Quick
      test_parse_matches_example;
    Alcotest.test_case "parse rejects bad input" `Quick test_parse_rejects;
    Alcotest.test_case "add keeps time order" `Quick test_add_keeps_order;
    Alcotest.test_case "validate rejects bad schedules" `Quick
      test_validate_rejects;
    Alcotest.test_case "walk honours the failure mask" `Quick
      test_walk_mask_faults;
    Alcotest.test_case "walk error codes" `Quick test_walk_error_codes;
    Alcotest.test_case "backoff is capped" `Quick test_backoff_capping;
    Alcotest.test_case "respawn blackout model" `Quick test_respawn_blackout;
    Alcotest.test_case "kill hottest, heal, verify (Internet2)" `Quick
      (kill_heal_e2e (B.internet2 ()));
    Alcotest.test_case "kill hottest, heal, verify (GEANT)" `Quick
      (kill_heal_e2e (B.geant ()));
    QCheck_alcotest.to_alcotest prop_deterministic;
    QCheck_alcotest.to_alcotest prop_unaffected_paths_stable;
    QCheck_alcotest.to_alcotest prop_recovery_monotone_in_boot;
  ]
