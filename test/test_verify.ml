(* Static verifier tests: clean configurations certify with zero
   violations, and mutation tests prove each fault class is caught with a
   concrete witness.  Every mutation starts from a freshly generated
   known-good configuration and corrupts exactly one aspect of it through
   the fault-injection hooks (Tcam.set_phys / set_vswitch, the pinning
   table, the tag map). *)

module H = Helpers
module C = Apple_core
module B = Apple_topology.Builders
module V = Apple_verify.Verify
module R = Apple_dataplane.Rule
module Tcam = Apple_dataplane.Tcam
module I = Apple_vnf.Instance
module Nf = Apple_vnf.Nf

let fresh ?(seed = 77) ?(named = B.internet2 ()) () =
  let s = H.small_scenario ~seed ~total:3000.0 ~max_classes:20 ~named () in
  let p = C.Optimization_engine.solve s in
  let asg = C.Subclass.assign s p in
  let built = C.Rule_generator.build s asg in
  (s, asg, built)

(* A 2-node line whose second host has no cores: both chain stages are
   forced onto switch 0, giving a vSwitch pipeline with two instances
   (needed to test stage reordering inside one pipeline). *)
let colocated () =
  let named = B.linear ~n:2 in
  let s =
    {
      C.Types.topo = named;
      classes =
        [|
          {
            C.Types.id = 0;
            src = 0;
            dst = 1;
            path = [| 0; 1 |];
            chain = [| Nf.Firewall; Nf.Ids |];
            src_block = C.Scenario.src_block_of_class_id 0;
            rate = 200.0;
          };
        |];
      host_cores = [| C.Types.default_host_cores; 0 |];
      seed = 0;
    }
  in
  let p = C.Optimization_engine.solve s in
  let asg = C.Subclass.assign s p in
  let built = C.Rule_generator.build s asg in
  (s, asg, built)

let check (s, asg, built) = V.check s asg built

let assert_certified name cfg =
  let r = check cfg in
  Alcotest.(check string) (name ^ " certifies") ""
    (if V.ok r then ""
     else Format.asprintf "%a" V.pp_report r);
  Alcotest.(check bool) (name ^ " walked") true (r.V.walks > 0)

let assert_flags code (s, asg, built) =
  let r = V.check s asg built in
  if V.count r code = 0 then
    Alcotest.failf "expected a %s violation, got: %s" (V.code_name code)
      (V.summary r);
  r

(* Every reported violation must carry a usable witness. *)
let assert_witnesses r =
  List.iter
    (fun v ->
      match v.V.witness with
      | V.Packet _ | V.Block _ -> ()
      | V.Note n ->
          Alcotest.(check bool) "note witness non-empty" true
            (String.length n > 0))
    r.V.violations

(* --- clean certification ------------------------------------------- *)

let test_certify_engines () =
  let s = H.small_scenario ~seed:77 ~total:3000.0 ~max_classes:20 () in
  let solvers =
    [
      ("lp", fun () -> C.Optimization_engine.solve s);
      ( "per-class",
        fun () ->
          C.Optimization_engine.solve ~method_:C.Optimization_engine.Per_class
            s );
      ("greedy", fun () -> C.Heuristic_engine.solve s);
    ]
  in
  List.iter
    (fun (name, solve) ->
      let asg = C.Subclass.assign s (solve ()) in
      let built = C.Rule_generator.build s asg in
      assert_certified ("internet2/" ^ name) (s, asg, built))
    solvers

let test_certify_topologies () =
  List.iter
    (fun named -> assert_certified named.B.label (fresh ~named ()))
    [ B.internet2 (); B.geant () ]

let test_certify_tag_modes () =
  let s = H.small_scenario ~seed:77 ~total:3000.0 ~max_classes:20 () in
  let asg = C.Subclass.assign s (C.Optimization_engine.solve s) in
  (* `Auto resolves to `Global here (the default mix has NAT chains);
     force `Local on a NAT-free scenario to cover the other mode. *)
  let built = C.Rule_generator.build s asg in
  Alcotest.(check bool) "seed mix needs global tags" true
    (built.C.Rule_generator.tag_mode = `Global);
  assert_certified "global" (s, asg, built);
  let s2, asg2, built2 = colocated () in
  Alcotest.(check bool) "nat-free chain stays local" true
    (built2.C.Rule_generator.tag_mode = `Local);
  assert_certified "local" (s2, asg2, built2)

(* --- mutation: dropped chain hop ----------------------------------- *)

(* Bypass the first instance of some vSwitch pipeline: the entry rule
   jumps straight to wherever that instance's own rule pointed. *)
let drop_hop net =
  let injected = ref false in
  Array.iter
    (fun t ->
      if not !injected then begin
        let rules = Tcam.vswitch_rules t in
        let next_of key i =
          List.find_opt
            (fun r -> r.R.v_key = key && r.R.v_port = R.From_instance i)
            rules
        in
        let rules' =
          List.map
            (fun r ->
              if !injected then r
              else
                match r.R.v_action with
                | R.To_instance i -> (
                    match next_of r.R.v_key i with
                    | Some nxt ->
                        injected := true;
                        { r with R.v_action = nxt.R.v_action }
                    | None -> r)
                | R.Back_to_network _ -> r)
            rules
        in
        if !injected then Tcam.set_vswitch t rules'
      end)
    net;
  Alcotest.(check bool) "mutation injected" true !injected

let test_dropped_hop () =
  let ((_, _, built) as cfg) = fresh () in
  drop_hop built.C.Rule_generator.network;
  let r = assert_flags V.Chain_order cfg in
  assert_witnesses r;
  (* The walk that skipped an NF must name the class it belongs to and
     carry a concrete packet from its source block. *)
  let v =
    List.find (fun v -> v.V.code = V.Chain_order) r.V.violations
  in
  Alcotest.(check bool) "violation names a class" true (v.V.class_id <> None);
  match v.V.witness with
  | V.Packet _ -> ()
  | _ -> Alcotest.fail "chain-order witness should be a packet"

(* --- mutation: reordered chain hops -------------------------------- *)

let test_reordered_hops () =
  let ((_, _, built) as cfg) = colocated () in
  (* Reverse the two-instance pipeline at switch 0:
     entry->i1->i2->out becomes entry->i2->i1->out. *)
  let t = built.C.Rule_generator.network.(0) in
  let rules = Tcam.vswitch_rules t in
  let entry_target =
    List.find_map
      (fun r ->
        match (r.R.v_port, r.R.v_action) with
        | R.From_network, R.To_instance i -> Some i
        | _ -> None)
      rules
  in
  let i1 = Option.get entry_target in
  let i2 =
    Option.get
      (List.find_map
         (fun r ->
           match (r.R.v_port, r.R.v_action) with
           | R.From_instance i, R.To_instance j when i = i1 -> Some j
           | _ -> None)
         rules)
  in
  let out =
    Option.get
      (List.find_map
         (fun r ->
           match (r.R.v_port, r.R.v_action) with
           | R.From_instance i, (R.Back_to_network _ as a) when i = i2 ->
               Some a
           | _ -> None)
         rules)
  in
  let rules' =
    List.map
      (fun r ->
        match r.R.v_port with
        | R.From_network | R.From_production_vm ->
            { r with R.v_action = R.To_instance i2 }
        | R.From_instance i when i = i2 ->
            { r with R.v_action = R.To_instance i1 }
        | R.From_instance i when i = i1 -> { r with R.v_action = out }
        | R.From_instance _ -> r)
      rules
  in
  Tcam.set_vswitch t rules';
  let r = assert_flags V.Chain_order cfg in
  assert_witnesses r

(* --- mutation: shadowed rule --------------------------------------- *)

let test_shadowed_rule () =
  let ((_, _, built) as cfg) = fresh () in
  let t =
    Array.to_list built.C.Rule_generator.network
    |> List.find (fun t -> Tcam.phys_rules t <> [])
  in
  (match Tcam.phys_rules t with
  | r :: _ as rules ->
      Tcam.set_phys t ({ r with R.priority = r.R.priority + 1 } :: rules)
  | [] -> assert false);
  let r = assert_flags V.Shadowed_rule cfg in
  assert_witnesses r

(* --- mutation: next hop rewired off the routing path ---------------- *)

let test_rewired_next_hop () =
  let ((_, _, built) as cfg) = fresh () in
  let net = built.C.Rule_generator.network in
  let injected = ref false in
  Array.iter
    (fun t ->
      if not !injected then
        let sw = Tcam.switch t in
        let rules' =
          List.map
            (fun r ->
              if !injected then r
              else
                match r.R.action with
                | R.Tag_and_forward { subclass; host = Apple_dataplane.Tag.Host _ } ->
                    (* The path is loopless, so pointing the forwarding
                       tag back at the current switch is always off the
                       remaining path. *)
                    injected := true;
                    { r with
                      R.action =
                        R.Tag_and_forward
                          { subclass; host = Apple_dataplane.Tag.Host sw } }
                | R.Fwd_to_host h when not !injected ->
                    injected := true;
                    { r with R.action = R.Fwd_to_host (h + 1) }
                | _ -> r)
            (Tcam.phys_rules t)
        in
        if !injected then Tcam.set_phys t rules')
    net;
  Alcotest.(check bool) "mutation injected" true !injected;
  let r = assert_flags V.Path_deviation cfg in
  assert_witnesses r

(* --- mutation: tag collision ---------------------------------------- *)

let test_tag_collision_duplicate () =
  let ((_, asg, built) as cfg) = fresh () in
  (* Allocate the same tag value to two different sub-classes. *)
  let subs = asg.C.Subclass.subclasses in
  (match subs with
  | a :: b :: _ ->
      let ta =
        Hashtbl.find built.C.Rule_generator.tag_of (C.Subclass.key a)
      in
      Hashtbl.replace built.C.Rule_generator.tag_of (C.Subclass.key b) ta
  | _ -> Alcotest.fail "need at least two sub-classes");
  let r = assert_flags V.Tag_collision cfg in
  assert_witnesses r

let test_tag_collision_overlap () =
  let ((_, _, built) as cfg) = fresh () in
  (* Duplicate a classification rule but stamp a different tag: the two
     overlapping rules now classify the same packets differently. *)
  let injected = ref false in
  Array.iter
    (fun t ->
      if not !injected then
        let rules = Tcam.phys_rules t in
        match
          List.find_opt
            (fun r ->
              match r.R.action with
              | R.Tag_and_forward _ | R.Tag_and_deliver _ -> true
              | _ -> false)
            rules
        with
        | Some r ->
            injected := true;
            let action' =
              match r.R.action with
              | R.Tag_and_forward { subclass; host } ->
                  R.Tag_and_forward { subclass = subclass + 1; host }
              | R.Tag_and_deliver { subclass; host } ->
                  R.Tag_and_deliver { subclass = subclass + 1; host }
              | a -> a
            in
            Tcam.set_phys t ({ r with R.action = action' } :: rules)
        | None -> ())
    built.C.Rule_generator.network;
  Alcotest.(check bool) "mutation injected" true !injected;
  let r = assert_flags V.Tag_collision cfg in
  assert_witnesses r;
  let v = List.find (fun v -> v.V.code = V.Tag_collision) r.V.violations in
  match v.V.witness with
  | V.Packet _ -> ()
  | _ -> Alcotest.fail "overlap witness should be a concrete packet"

(* --- mutation: overloaded instance ---------------------------------- *)

let test_overloaded_instance () =
  let ((s, _, _) as cfg) = fresh () in
  s.C.Types.classes.(0).C.Types.rate <-
    s.C.Types.classes.(0).C.Types.rate *. 50.0;
  let r = assert_flags V.Capacity cfg in
  assert_witnesses r

(* --- mutation: blackhole -------------------------------------------- *)

let test_blackhole () =
  let ((s, _, built) as cfg) = fresh () in
  (* Wipe the APPLE table of class 0's ingress switch: its traffic can
     match nothing there. *)
  let sw = s.C.Types.classes.(0).C.Types.path.(0) in
  Tcam.set_phys built.C.Rule_generator.network.(sw) [];
  let r = assert_flags V.Blackhole cfg in
  assert_witnesses r;
  (* The witness packet must come from the class's own source block. *)
  let v =
    List.find
      (fun v -> v.V.code = V.Blackhole && v.V.class_id <> None)
      r.V.violations
  in
  match (v.V.witness, v.V.class_id) with
  | V.Packet p, Some cid ->
      let b = s.C.Types.classes.(cid).C.Types.src_block in
      let shift = 32 - b.C.Types.Prefix.len in
      Alcotest.(check int) "witness src in class block"
        (b.C.Types.Prefix.addr lsr shift)
        (p.Apple_classifier.Header.src_ip lsr shift)
  | _ -> Alcotest.fail "blackhole witness should be a packet with a class"

(* --- mutation: forwarding loop -------------------------------------- *)

let test_forwarding_loop () =
  let ((_, _, built) as cfg) = fresh () in
  let injected = ref false in
  Array.iter
    (fun t ->
      if not !injected then
        let rules' =
          List.map
            (fun r ->
              match r.R.v_port with
              | R.From_instance i when not !injected ->
                  injected := true;
                  { r with R.v_action = R.To_instance i }
              | _ -> r)
            (Tcam.vswitch_rules t)
        in
        if !injected then Tcam.set_vswitch t rules')
    built.C.Rule_generator.network;
  Alcotest.(check bool) "mutation injected" true !injected;
  let r = assert_flags V.Forwarding_loop cfg in
  assert_witnesses r

(* --- mutation: isolation -------------------------------------------- *)

let test_isolation () =
  let ((_, asg, _) as cfg) = fresh () in
  (* Re-pin one sub-class stage to an instance of a different kind. *)
  let sub =
    List.find
      (fun sub -> Array.length sub.C.Subclass.hops > 0)
      asg.C.Subclass.subclasses
  in
  let key = C.Subclass.key sub in
  let current = Hashtbl.find asg.C.Subclass.instance_of (key, 0) in
  let wrong =
    List.find
      (fun i -> I.kind i <> I.kind current)
      asg.C.Subclass.instances
  in
  Hashtbl.replace asg.C.Subclass.instance_of (key, 0) wrong;
  let r = assert_flags V.Isolation cfg in
  assert_witnesses r

(* --- the controller gate -------------------------------------------- *)

let test_gate () =
  let s, asg, built = fresh () in
  (match V.gate s asg built with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clean configuration rejected: %s" e);
  Tcam.set_phys built.C.Rule_generator.network.(s.C.Types.classes.(0).C.Types.path.(0)) [];
  (match V.gate s asg built with
  | Ok () -> Alcotest.fail "corrupted configuration admitted"
  | Error e ->
      Alcotest.(check bool) "rejection names the fault" true
        (let rec contains i =
           i + 9 <= String.length e
           && (String.sub e i 9 = "blackhole" || contains (i + 1))
         in
         contains 0))

let test_controller_gate () =
  let s = H.small_scenario ~seed:77 ~total:3000.0 ~max_classes:20 () in
  (* A real verify gate admits the epoch... *)
  let c = C.Controller.create ~gate:V.gate s in
  let _report = C.Controller.run_epoch c in
  (* ...and a refusing gate rejects it without installing anything. *)
  let c2 = C.Controller.create ~gate:(fun _ _ _ -> Error "nope") s in
  (match C.Controller.run_epoch c2 with
  | exception C.Controller.Rejected m ->
      Alcotest.(check string) "rejection message" "nope" m
  | _ -> Alcotest.fail "refusing gate did not reject the epoch");
  Alcotest.(check bool) "no netstate installed" true
    (C.Controller.netstate c2 = None)

let suite =
  [
    Alcotest.test_case "clean configs certify (engines)" `Quick
      test_certify_engines;
    Alcotest.test_case "clean configs certify (topologies)" `Quick
      test_certify_topologies;
    Alcotest.test_case "clean configs certify (tag modes)" `Quick
      test_certify_tag_modes;
    Alcotest.test_case "mutation: dropped chain hop" `Quick test_dropped_hop;
    Alcotest.test_case "mutation: reordered chain hops" `Quick
      test_reordered_hops;
    Alcotest.test_case "mutation: shadowed rule" `Quick test_shadowed_rule;
    Alcotest.test_case "mutation: next hop off the path" `Quick
      test_rewired_next_hop;
    Alcotest.test_case "mutation: duplicate tag" `Quick
      test_tag_collision_duplicate;
    Alcotest.test_case "mutation: overlapping classification" `Quick
      test_tag_collision_overlap;
    Alcotest.test_case "mutation: overloaded instance" `Quick
      test_overloaded_instance;
    Alcotest.test_case "mutation: blackhole" `Quick test_blackhole;
    Alcotest.test_case "mutation: forwarding loop" `Quick
      test_forwarding_loop;
    Alcotest.test_case "mutation: foreign instance pinned" `Quick
      test_isolation;
    Alcotest.test_case "gate rejects corrupted tables" `Quick test_gate;
    Alcotest.test_case "controller honors the gate" `Quick
      test_controller_gate;
  ]
