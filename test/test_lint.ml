(* The AST-driven determinism & purity analyzer (lib/lint).

   Every rule in the catalog must fire on its Selftest fixture with the
   right id and location, waivers must suppress (except where the rule
   says they can't), and the real tree must be clean — the same gate
   `make lint` runs, enforced here so `dune runtest` alone catches a
   regression.  The JSON report over the fixture corpus is a golden
   (refresh with [make goldens]). *)

module L = Apple_lint
module Goldens = Apple_chaos.Goldens

let ids ds =
  List.map
    (fun (d : L.Diagnostic.t) -> (d.rule.L.Rule.id, d.line))
    (L.Diagnostic.active ds)

let check_fixture (f : L.Selftest.fixture) () =
  let ds = L.Analyze.source ~path:f.fname f.source in
  Alcotest.(check (list (pair string int)))
    (f.fname ^ " active (rule, line) pairs")
    f.expect (ids ds)

(* --- rule catalog sanity ------------------------------------------- *)

let test_catalog () =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (r : L.Rule.t) ->
      Alcotest.(check bool)
        ("unique id " ^ r.id) false (Hashtbl.mem seen r.id);
      Hashtbl.replace seen r.id ();
      Alcotest.(check (option string))
        ("find by id " ^ r.id)
        (Some r.id)
        (Option.map (fun (x : L.Rule.t) -> x.id) (L.Rule.find r.id));
      Alcotest.(check (option string))
        ("find by name " ^ r.name)
        (Some r.id)
        (Option.map (fun (x : L.Rule.t) -> x.id) (L.Rule.find r.name)))
    L.Rule.catalog;
  (* every catalog rule appears in at least one fixture expectation,
     so the corpus stays the living documentation *)
  let exercised =
    List.concat_map
      (fun (f : L.Selftest.fixture) -> List.map fst f.expect)
      L.Selftest.fixtures
  in
  List.iter
    (fun (r : L.Rule.t) ->
      if not (List.exists (String.equal r.id) exercised) then
        Alcotest.failf "rule %s has no fixture" r.id)
    L.Rule.catalog;
  (* legacy grep-gate alias still resolves *)
  Alcotest.(check (option string))
    "legacy hashtbl alias" (Some "L11")
    (Option.map (fun (x : L.Rule.t) -> x.id) (L.Rule.find "hashtbl"))

(* --- waiver behavior ----------------------------------------------- *)

let test_waiver_same_line () =
  let src =
    "let keys t = Hashtbl.fold (fun k _ a -> k :: a) t [] (* lint: L3 — \
     commutative demo *)\n"
  in
  let ds = L.Analyze.source ~path:"lib/demo/w.ml" src in
  Alcotest.(check (list (pair string int))) "suppressed" [] (ids ds);
  match ds with
  | [ d ] ->
      Alcotest.(check (option string))
        "reason retained" (Some "commutative demo") d.waived
  | _ -> Alcotest.fail "expected exactly one (waived) diagnostic"

let test_waiver_line_above () =
  let src =
    "(* lint: hashtbl-order — commutative demo *)\n\
     let keys t = Hashtbl.fold (fun k _ a -> k :: a) t []\n"
  in
  let ds = L.Analyze.source ~path:"lib/demo/w.ml" src in
  Alcotest.(check (list (pair string int))) "suppressed" [] (ids ds)

let test_waiver_wrong_line () =
  (* a waiver two lines up governs nothing: the diagnostic stays and
     the stale waiver is itself flagged *)
  let src =
    "(* lint: L3 — too far away *)\n\
     let pad = 0\n\
     let keys t = Hashtbl.fold (fun k _ a -> k :: a) t []\n"
  in
  let ds = L.Analyze.source ~path:"lib/demo/w.ml" src in
  Alcotest.(check (list (pair string int)))
    "both active"
    [ ("L13", 1); ("L3", 3) ]
    (ids ds)

let test_waiver_needs_reason () =
  let src = "let h v = Hashtbl.hash v (* lint: L2 *)\n" in
  let ds = L.Analyze.source ~path:"lib/demo/w.ml" src in
  Alcotest.(check (list (pair string int)))
    "reason-less waiver rejected, diagnostic stays"
    [ ("L2", 1); ("L13", 1) ]
    (ids ds)

let test_waiver_unknown_rule () =
  let src = "let x = 1 (* lint: L99 — no such rule *)\n" in
  let ds = L.Analyze.source ~path:"lib/demo/w.ml" src in
  Alcotest.(check (list (pair string int))) "flagged" [ ("L13", 1) ] (ids ds)

let test_waiver_survives_multiline_comment () =
  (* the grep gate's one-line strip_comments missed exactly this: a
     multi-line comment closing on the offending line.  The AST pass
     reads the real comment stream. *)
  let src =
    "(* a prose comment\n\
    \   mentioning print_endline and compare, spanning lines *)\n\
     let x = 1\n"
  in
  let ds = L.Analyze.source ~path:"lib/demo/w.ml" src in
  Alcotest.(check (list (pair string int))) "prose never fires" [] (ids ds)

(* --- lib/obs unconditional stdout ---------------------------------- *)

let test_obs_unconditional () =
  (* same print, three homes: CLI code is free, lib/ is waivable,
     lib/obs is not *)
  let src = "let f () = print_endline \"x\"\n" in
  Alcotest.(check (list (pair string int)))
    "bin/ prints freely" []
    (ids (L.Analyze.source ~path:"bin/demo.ml" src));
  Alcotest.(check (list (pair string int)))
    "lib/ flags L6"
    [ ("L6", 1) ]
    (ids (L.Analyze.source ~path:"lib/demo/p.ml" src));
  Alcotest.(check (list (pair string int)))
    "lib/obs flags L7"
    [ ("L7", 1) ]
    (ids (L.Analyze.source ~path:"lib/obs/p.ml" src));
  let src' = "let f () = print_endline \"x\" (* lint: L6 — try anyway *)\n" in
  let ds = L.Analyze.source ~path:"lib/obs/p.ml" src' in
  (* the L6 waiver matches nothing (the obs rule is L7) and L7 stays *)
  Alcotest.(check (list (pair string int)))
    "waiver cannot silence lib/obs"
    [ ("L7", 1); ("L13", 1) ]
    (ids ds)

(* --- interfaces and scoping ---------------------------------------- *)

let test_mli_and_scopes () =
  Alcotest.(check (list (pair string int)))
    "Hashtbl type in a lib/parallel interface"
    [ ("L11", 1) ]
    (ids
       (L.Analyze.source ~path:"lib/parallel/demo.mli"
          "val t : (int, int) Hashtbl.t\n"));
  Alcotest.(check (list (pair string int)))
    "same interface elsewhere is fine" []
    (ids
       (L.Analyze.source ~path:"lib/core/demo.mli"
          "val t : (int, int) Hashtbl.t\n"));
  Alcotest.(check (list (pair string int)))
    "Random.State is the sanctioned form" []
    (ids
       (L.Analyze.source ~path:"lib/demo/r.ml"
          "let f st = Random.State.int st 4\n"));
  Alcotest.(check (list (pair string int)))
    "Stdlib qualification does not hide a rule"
    [ ("L1", 1) ]
    (ids
       (L.Analyze.source ~path:"lib/demo/s.ml"
          "let c a b = Stdlib.compare a b\n"))

(* --- clean tree ----------------------------------------------------- *)

let find_source_root () =
  (* outermost dune-project above cwd: from _build/default/test this
     resolves to the real workspace root, skipping _build/default *)
  let rec up acc dir =
    let acc =
      if Sys.file_exists (Filename.concat dir "dune-project") then dir :: acc
      else acc
    in
    let parent = Filename.dirname dir in
    if String.equal parent dir then acc else up acc parent
  in
  match up [] (Sys.getcwd ()) with
  | root :: _ when Sys.file_exists (Filename.concat root "lib/lint/analyze.ml")
    ->
      Some root
  | _ -> None

let test_clean_tree () =
  match find_source_root () with
  | None -> () (* sandboxed run without the source tree; make lint covers it *)
  | Some root ->
      let { L.Analyze.files; diagnostics } =
        L.Analyze.tree ~root ~dirs:[ "lib"; "bin"; "bench"; "tools" ]
      in
      Alcotest.(check bool) "analyzed a real tree" true (files > 100);
      let act = L.Diagnostic.active diagnostics in
      if act <> [] then
        Alcotest.failf "tree not lint-clean:\n%s"
          (String.concat "\n" (List.map L.Diagnostic.to_text act))

(* --- JSON golden ---------------------------------------------------- *)

let test_json_golden () =
  match
    Goldens.check
      ~path:(Filename.concat "goldens" "lint_fixtures.json")
      ~actual:(L.Selftest.report_json ())
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1))
  in
  go 0

let test_json_shape () =
  let j = L.Selftest.report_json () in
  List.iter
    (fun key ->
      if not (contains ~needle:(Printf.sprintf "\"%s\"" key) j) then
        Alcotest.failf "JSON report lacks %S" key)
    [ "schema"; "files"; "rules"; "diagnostics"; "summary" ];
  Alcotest.(check bool)
    "schema id embedded" true
    (contains ~needle:("\"" ^ L.Diagnostic.schema ^ "\"") j)

let suite =
  List.map
    (fun (f : L.Selftest.fixture) ->
      Alcotest.test_case ("fixture " ^ f.fname) `Quick (check_fixture f))
    L.Selftest.fixtures
  @ [
      Alcotest.test_case "rule catalog" `Quick test_catalog;
      Alcotest.test_case "waiver same line" `Quick test_waiver_same_line;
      Alcotest.test_case "waiver line above" `Quick test_waiver_line_above;
      Alcotest.test_case "waiver wrong line" `Quick test_waiver_wrong_line;
      Alcotest.test_case "waiver needs reason" `Quick test_waiver_needs_reason;
      Alcotest.test_case "waiver unknown rule" `Quick test_waiver_unknown_rule;
      Alcotest.test_case "multi-line comment" `Quick
        test_waiver_survives_multiline_comment;
      Alcotest.test_case "lib/obs unconditional" `Quick test_obs_unconditional;
      Alcotest.test_case "mli + scoping" `Quick test_mli_and_scopes;
      Alcotest.test_case "tree is lint-clean" `Quick test_clean_tree;
      Alcotest.test_case "JSON golden" `Quick test_json_golden;
      Alcotest.test_case "JSON shape" `Quick test_json_shape;
    ]
