(* Soak harness: endurance-run invariants, checkpoint round-trips and
   the byte-identical resume guarantee, at miniature scale (a 24-snapshot
   cycle instead of 672 keeps each case well under a second). *)

module Soak = Apple_soak.Soak
module Checkpoint = Apple_soak.Checkpoint
module Fault = Apple_chaos.Fault
module B = Apple_topology.Builders

let mini ?(seed = 7) ?(epochs = 36) ?(load_source = Soak.Oracle)
    ?(schedule = Fault.empty) ?jobs ?(engine = `Best) () =
  {
    (Soak.default_config (B.internet2 ())) with
    Soak.seed;
    epochs;
    reopt_every = 12;
    checkpoint_every = 6;
    cycle = 24;
    total_rate = 2500.0;
    max_classes = 10;
    heal_after = 2;
    engine;
    jobs;
    load_source;
    schedule;
  }

let drill =
  match
    Fault.parse
      "at 14 kill-instance hottest\nat 20 link-down busiest\nat 27 link-up \
       busiest"
  with
  | Ok s -> s
  | Error e -> invalid_arg ("drill schedule: " ^ e)

let session cfg =
  match Soak.create cfg with
  | Ok s -> s
  | Error e -> Alcotest.failf "Soak.create: %s" e

(* Throwaway state dirs for checkpoint-writing runs. *)
let with_tmpdir f =
  let dir = Filename.temp_file "apple_soak" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

(* --- unit tests ---------------------------------------------------- *)

let test_mini_run_clean () =
  let o = Soak.run (session (mini ~schedule:drill ())) in
  Alcotest.(check bool) "completed" true o.Soak.completed;
  Alcotest.(check int) "all epochs" 36 o.Soak.epochs_run;
  Alcotest.(check (list string)) "no violations" [] o.Soak.violations;
  Alcotest.(check bool)
    "stream ends with the summary line" true
    (contains ~needle:"\nS epochs=36 violations=0\n" o.Soak.stream);
  Alcotest.(check bool)
    "summary says completed" true
    (contains ~needle:"status: completed" o.Soak.summary)

let test_validate_config () =
  (match Soak.validate_config (mini ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mini config invalid: %s" e);
  (match Soak.validate_config { (mini ()) with Soak.epochs = 0 } with
  | Ok () -> Alcotest.fail "accepted zero epochs"
  | Error _ -> ());
  (* Fault times must be integral epochs in soak (unlike chaos seconds). *)
  let frac = Fault.add Fault.empty ~at:14.5 (Fault.Kill_instance Fault.Hottest) in
  match Soak.validate_config { (mini ()) with Soak.schedule = frac } with
  | Ok () -> Alcotest.fail "accepted fractional epoch"
  | Error e -> Alcotest.(check bool) "names the time" true (contains ~needle:"14.5" e)

let test_checkpoint_parse_errors () =
  let sess = session (mini ()) in
  ignore (Soak.run ~halt_at:12 sess);
  Alcotest.(check bool) "boundary checkpointable" true (Soak.checkpointable sess);
  let ck =
    match Soak.checkpoint_now sess with
    | Ok ck -> ck
    | Error e -> Alcotest.failf "checkpoint_now: %s" e
  in
  let str = Checkpoint.to_string ck in
  (match Checkpoint.of_string str with
  | Ok ck' ->
      Alcotest.(check int) "epoch survives" ck.Checkpoint.epoch ck'.Checkpoint.epoch
  | Error e -> Alcotest.failf "round-trip parse: %s" e);
  (* Flip one digest character: refused. *)
  let corrupt = Bytes.of_string str in
  let last = Bytes.length corrupt - 2 in
  Bytes.set corrupt last (if Bytes.get corrupt last = '0' then '1' else '0');
  (match Checkpoint.of_string (Bytes.to_string corrupt) with
  | Ok _ -> Alcotest.fail "corrupt digest accepted"
  | Error e -> Alcotest.(check bool) "names digest" true (contains ~needle:"digest" e));
  (* Unknown version: refused. *)
  (match Checkpoint.of_string "apple-soak-ckpt/999\n" with
  | Ok _ -> Alcotest.fail "bad version accepted"
  | Error _ -> ());
  (* Restoring under a different config: fingerprint mismatch. *)
  match Soak.restore (mini ~seed:8 ()) ck with
  | Ok _ -> Alcotest.fail "fingerprint mismatch accepted"
  | Error e ->
      Alcotest.(check bool) "names fingerprint" true (contains ~needle:"fingerprint" e)

let test_checkpoint_deferred_past_pending_heal () =
  with_tmpdir @@ fun dir ->
  (* Kill at 17 heals at 19: the epoch-18 checkpoint must NOT be taken
     (a pending heal is open state a checkpoint cannot carry); the
     cadence resumes once quiescent. *)
  let schedule =
    match Fault.parse "at 17 kill-instance hottest" with
    | Ok s -> s
    | Error e -> invalid_arg e
  in
  let sess = session (mini ~schedule ()) in
  let o = Soak.run ~state_dir:dir sess in
  Alcotest.(check (list string)) "no violations" [] o.Soak.violations;
  let ckpts = Soak.checkpoint_epochs sess in
  Alcotest.(check bool) "some checkpoints" true (List.length ckpts > 0);
  Alcotest.(check bool) "epoch 18 skipped" false (List.mem 18 ckpts);
  Alcotest.(check bool)
    "cadence resumes after the heal" true
    (List.exists (fun e -> e > 18) ckpts)

let test_polled_checkpoints_on_boundaries_only () =
  with_tmpdir @@ fun dir ->
  let sess = session (mini ~load_source:Soak.Polled ()) in
  let o = Soak.run ~state_dir:dir sess in
  Alcotest.(check bool) "completed" true o.Soak.completed;
  Alcotest.(check (list string)) "no violations" [] o.Soak.violations;
  let ckpts = Soak.checkpoint_epochs sess in
  Alcotest.(check bool) "some checkpoints" true (List.length ckpts > 0);
  List.iter
    (fun e ->
      if e mod 12 <> 0 then
        Alcotest.failf "polled checkpoint off a re-opt boundary: epoch %d" e)
    ckpts

let test_jobs_variation_identical () =
  let run jobs =
    Soak.run (session (mini ~engine:`Per_class ?jobs ~schedule:drill ()))
  in
  let a = run None and b = run (Some 3) in
  Alcotest.(check string) "stream identical" a.Soak.stream b.Soak.stream;
  Alcotest.(check string) "summary identical" a.Soak.summary b.Soak.summary

(* Faults landing exactly on a re-optimization boundary (epoch mod
   reopt_every = 0) hit the trickiest ordering in the epoch step:
   start_window re-solves first, then heals are processed, then the
   fault injects into the freshly installed window.  The run must stay
   clean and byte-identical across repeats and jobs values. *)
let boundary_drill =
  match
    Fault.parse
      "at 12 kill-instance hottest\n\
       at 24 link-down busiest\n\
       at 30 link-up busiest"
  with
  | Ok s -> s
  | Error e -> invalid_arg ("boundary drill: " ^ e)

let test_chaos_at_boundary_deterministic () =
  let run jobs =
    Soak.run (session (mini ~engine:`Per_class ?jobs ~schedule:boundary_drill ()))
  in
  let a = run None in
  Alcotest.(check (list string)) "no violations" [] a.Soak.violations;
  Alcotest.(check int) "all epochs ran" 36 a.Soak.epochs_run;
  (* both faults actually fired *)
  Alcotest.(check bool) "kill fired at the boundary" true
    (contains ~needle:"F 12 kill-instance" a.Soak.stream);
  Alcotest.(check bool) "link-down fired at the boundary" true
    (contains ~needle:"F 24 link-down" a.Soak.stream);
  let b = run None and c = run (Some 3) in
  Alcotest.(check string) "repeat identical" a.Soak.stream b.Soak.stream;
  Alcotest.(check string) "jobs identical" a.Soak.stream c.Soak.stream;
  Alcotest.(check string) "summary identical" a.Soak.summary c.Soak.summary

let test_bench_json_shape () =
  let sess = session (mini ()) in
  let o = Soak.run sess in
  let j = Soak.bench_json sess o in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains ~needle j))
    [
      "\"schema\": \"apple-bench-soak/1\"";
      "\"trajectory\": [";
      "\"totals\": {";
      "\"completed\": true";
    ]

(* --- properties ----------------------------------------------------- *)

let schedule_of = function
  | 0 -> Fault.empty
  | 1 -> drill
  | _ -> (
      match Fault.parse "at 9 tcam-loss busiest 0.3\nat 16 poller-blackout 2" with
      | Ok s -> s
      | Error e -> invalid_arg e)

(* restore (checkpoint st) == st: the rebuilt controller state carries
   the same fingerprint (assignment dump, rule tables, handler counters,
   failure mask) as the live session it was taken from.  Reconstructing
   checkpoints rebuild at once; boundary checkpoints deliberately carry
   no controller state (the next re-optimization recreates it), so both
   sessions advance one epoch first. *)
let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint round-trip preserves state" ~count:8
    QCheck.(triple (int_range 0 1000) (int_range 0 2) (int_range 1 5))
    (fun (seed, sched, halt6) ->
      let halt = 6 * halt6 in
      let cfg = mini ~seed ~schedule:(schedule_of sched) () in
      let sess = session cfg in
      let o = Soak.run ~halt_at:halt sess in
      if not (Soak.checkpointable sess) then
        (* Transient failover state straddles this epoch; the cadence
           would defer here too.  Vacuous draw. *)
        true
      else
        match Soak.checkpoint_now sess with
        | Error e -> QCheck.Test.fail_reportf "checkpoint_now: %s" e
        | Ok ck -> (
            match Checkpoint.of_string (Checkpoint.to_string ck) with
            | Error e -> QCheck.Test.fail_reportf "parse: %s" e
            | Ok ck' -> (
                match Soak.restore ~stream_prefix:o.Soak.stream cfg ck' with
                | Error e -> QCheck.Test.fail_reportf "restore: %s" e
                | Ok sess' ->
                    if not ck.Checkpoint.reconstruct then begin
                      ignore (Soak.run ~halt_at:(halt + 1) sess);
                      ignore (Soak.run ~halt_at:(halt + 1) sess')
                    end;
                    String.equal
                      (Soak.state_fingerprint sess)
                      (Soak.state_fingerprint sess'))))

(* Checkpoint at epoch k, kill, resume: the continued run's stream and
   summary are byte-identical to an uninterrupted run — across seeds,
   halt points, schedules, and the polled load source. *)
let prop_resume_equals_uninterrupted =
  QCheck.Test.make ~name:"resume reproduces the uninterrupted run" ~count:6
    QCheck.(
      quad (int_range 0 1000) (int_range 8 34) (int_range 0 2) bool)
    (fun (seed, halt, sched, polled) ->
      let load_source = if polled then Soak.Polled else Soak.Oracle in
      (* The drill's symbolic link faults need oracle determinism at the
         polled sampling points too; both sources must replay cleanly. *)
      let cfg = mini ~seed ~load_source ~schedule:(schedule_of sched) () in
      let uninterrupted = Soak.run (session cfg) in
      with_tmpdir @@ fun dir ->
      let stream_path = Filename.concat dir "stream.log" in
      let killed =
        match Soak.create ~stream_path cfg with
        | Ok s -> s
        | Error e -> invalid_arg ("Soak.create: " ^ e)
      in
      ignore (Soak.run ~halt_at:halt ~state_dir:dir killed);
      if not (Sys.file_exists (Filename.concat dir "checkpoint.apple")) then
        (* Halted before the first checkpoint landed: nothing to resume
           from; the property is vacuous for this draw. *)
        true
      else
        match Soak.resume_dir cfg ~dir with
        | Error e -> QCheck.Test.fail_reportf "resume_dir: %s" e
        | Ok resumed ->
            let o = Soak.run ~state_dir:dir resumed in
            String.equal uninterrupted.Soak.stream o.Soak.stream
            && String.equal uninterrupted.Soak.summary o.Soak.summary)

let suite =
  [
    Alcotest.test_case "mini endurance run is clean" `Quick test_mini_run_clean;
    Alcotest.test_case "config validation" `Quick test_validate_config;
    Alcotest.test_case "checkpoint parse errors" `Quick test_checkpoint_parse_errors;
    Alcotest.test_case "checkpoint deferred past pending heal" `Quick
      test_checkpoint_deferred_past_pending_heal;
    Alcotest.test_case "polled checkpoints land on boundaries" `Quick
      test_polled_checkpoints_on_boundaries_only;
    Alcotest.test_case "jobs variation is byte-identical" `Quick
      test_jobs_variation_identical;
    Alcotest.test_case "chaos at a re-opt boundary is deterministic" `Quick
      test_chaos_at_boundary_deterministic;
    Alcotest.test_case "bench_json shape" `Quick test_bench_json_shape;
    QCheck_alcotest.to_alcotest prop_checkpoint_roundtrip;
    QCheck_alcotest.to_alcotest prop_resume_equals_uninterrupted;
  ]
