(* The telemetry subsystem's own contract: exact histogram bucket
   boundaries, registry idempotence, journal ring wrap, disabled-path
   no-ops, span aggregation and exporter sanity.  Every test runs with
   the global switch restored to off, so the rest of the suite (and its
   determinism checks) observes a disabled subsystem. *)

module T = Apple_telemetry.Telemetry

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  nn = 0 || scan 0

(* Flip telemetry on for the body of a test, restoring the disabled
   default (and zeroed metrics) no matter how the body exits. *)
let with_telemetry f =
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    f

(* --- histogram buckets ---------------------------------------------- *)

let test_histogram_bucket_boundaries () =
  with_telemetry @@ fun () ->
  (* lo=1, one bucket per decade, 3 decades: uppers 10, 100, 1000, inf. *)
  let h =
    T.Histogram.create ~lo:1.0 ~buckets_per_decade:1 ~decades:3
      "test.hist.boundaries"
  in
  Alcotest.(check int) "bucket count" 4 (T.Histogram.num_buckets h);
  Alcotest.(check (float 1e-9)) "upper 0" 10.0 (T.Histogram.bucket_upper h 0);
  Alcotest.(check (float 1e-7)) "upper 1" 100.0 (T.Histogram.bucket_upper h 1);
  Alcotest.(check (float 1e-6)) "upper 2" 1000.0 (T.Histogram.bucket_upper h 2);
  Alcotest.(check bool) "last is overflow" true
    (T.Histogram.bucket_upper h 3 = infinity);
  (* Membership: upper(i-1) < v <= upper(i); at-or-below lo -> bucket 0. *)
  List.iter
    (fun (v, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_index %g" v)
        expect
        (T.Histogram.bucket_index h v))
    [
      (0.0, 0); (0.5, 0); (1.0, 0); (9.99, 0); (10.0, 0);
      (10.000001, 1); (100.0, 1); (100.1, 2); (1000.0, 2);
      (1000.1, 3); (1e12, 3);
    ]

let test_histogram_observe_and_percentile () =
  with_telemetry @@ fun () ->
  let h =
    T.Histogram.create ~lo:1.0 ~buckets_per_decade:1 ~decades:3
      "test.hist.observe"
  in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (T.Histogram.percentile h 50.0));
  Alcotest.(check bool) "empty max is -inf" true
    (T.Histogram.max_value h = neg_infinity);
  List.iter (T.Histogram.observe h) [ 2.0; 3.0; 5.0; 50.0; 40000.0 ];
  Alcotest.(check int) "count" 5 (T.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 40060.0 (T.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "max" 40000.0 (T.Histogram.max_value h);
  Alcotest.(check int) "bucket 0 holds three" 3 (T.Histogram.bucket_count h 0);
  Alcotest.(check int) "bucket 1 holds one" 1 (T.Histogram.bucket_count h 1);
  Alcotest.(check int) "overflow holds one" 1 (T.Histogram.bucket_count h 3);
  (* p50: rank ceil(0.5*5)=3 -> cumulative reaches 3 in bucket 0. *)
  Alcotest.(check (float 1e-9)) "p50 upper bound" 10.0
    (T.Histogram.percentile h 50.0);
  (* p95: rank 5 lands in the overflow bucket -> reports the true max. *)
  Alcotest.(check (float 1e-9)) "p95 = observed max" 40000.0
    (T.Histogram.percentile h 95.0)

let test_histogram_edge_observations () =
  with_telemetry @@ fun () ->
  let h =
    T.Histogram.create ~lo:1.0 ~buckets_per_decade:1 ~decades:2
      "test.hist.edges"
  in
  (* Zero and negative are genuine observations in the smallest bucket. *)
  T.Histogram.observe h 0.0;
  T.Histogram.observe h (-3.0);
  Alcotest.(check int) "zero and negative in bucket 0" 2
    (T.Histogram.bucket_count h 0);
  Alcotest.(check (float 1e-9)) "sum includes them" (-3.0) (T.Histogram.sum h);
  (* NaN is dropped entirely: no count, no poisoned sum. *)
  T.Histogram.observe h Float.nan;
  Alcotest.(check int) "nan not counted" 2 (T.Histogram.count h);
  Alcotest.(check bool) "sum still finite" true
    (Float.is_finite (T.Histogram.sum h));
  (* Boundary values land in the bucket whose inclusive upper they hit. *)
  T.Histogram.observe h 10.0;
  Alcotest.(check int) "exact boundary inclusive" 3
    (T.Histogram.bucket_count h 0);
  (* Infinity goes to the overflow bucket and becomes the max. *)
  T.Histogram.observe h infinity;
  Alcotest.(check int) "inf in overflow" 1
    (T.Histogram.bucket_count h (T.Histogram.num_buckets h - 1));
  Alcotest.(check bool) "inf is max" true (T.Histogram.max_value h = infinity)

(* --- registry -------------------------------------------------------- *)

let test_registry_idempotent () =
  with_telemetry @@ fun () ->
  let c1 = T.Counter.create "test.reg.counter" in
  let c2 = T.Counter.create "test.reg.counter" in
  T.Counter.incr c1;
  T.Counter.incr c2;
  Alcotest.(check int) "same counter via both handles" 2 (T.Counter.value c1);
  (* A histogram's shape is fixed by the first creation. *)
  let h1 = T.Histogram.create ~lo:1.0 ~buckets_per_decade:1 ~decades:2 "test.reg.h" in
  let h2 = T.Histogram.create ~lo:1e-6 "test.reg.h" in
  Alcotest.(check int) "first shape wins"
    (T.Histogram.num_buckets h1) (T.Histogram.num_buckets h2);
  (* Same name as a different metric type must be rejected. *)
  Alcotest.check_raises "type clash"
    (Invalid_argument
       "Telemetry: \"test.reg.counter\" is already registered as a different \
        metric type")
    (fun () -> ignore (T.Gauge.create "test.reg.counter"))

let test_reset_keeps_registry () =
  with_telemetry @@ fun () ->
  let c = T.Counter.create "test.reset.counter" in
  let g = T.Gauge.create "test.reset.gauge" in
  T.Counter.add c 5;
  T.Gauge.set g 3.5;
  T.reset ();
  Alcotest.(check int) "counter zeroed" 0 (T.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge zeroed" 0.0 (T.Gauge.value g);
  T.Counter.incr c;
  Alcotest.(check int) "handle still live" 1 (T.Counter.value c)

(* --- gauges ---------------------------------------------------------- *)

let test_gauge_set_max () =
  with_telemetry @@ fun () ->
  let g = T.Gauge.create "test.gauge.hwm" in
  T.Gauge.set_max g 4.0;
  T.Gauge.set_max g 2.0;
  Alcotest.(check (float 0.0)) "high watermark holds" 4.0 (T.Gauge.value g);
  T.Gauge.set g 1.0;
  Alcotest.(check (float 0.0)) "set overrides" 1.0 (T.Gauge.value g)

(* --- journal --------------------------------------------------------- *)

let test_journal_ring_wrap () =
  with_telemetry @@ fun () ->
  let saved = T.Journal.capacity () in
  Fun.protect ~finally:(fun () -> T.Journal.set_capacity saved) @@ fun () ->
  T.Journal.set_capacity 8;
  for i = 0 to 19 do
    T.Journal.recordf ~kind:"test" "event %d" i
  done;
  Alcotest.(check int) "length capped" 8 (T.Journal.length ());
  Alcotest.(check int) "total counts everything" 20 (T.Journal.total ());
  Alcotest.(check int) "dropped" 12 (T.Journal.dropped ());
  let entries = T.Journal.entries () in
  Alcotest.(check int) "entries returned" 8 (List.length entries);
  (* Oldest surviving entry is seq 12; order is chronological. *)
  Alcotest.(check (list int)) "surviving seqs"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun e -> e.T.Journal.seq) entries);
  Alcotest.(check string) "detail preserved" "event 19"
    (List.nth entries 7).T.Journal.detail

(* --- disabled path --------------------------------------------------- *)

let test_disabled_is_noop () =
  (* Telemetry is off here (suite default).  Updates must not stick. *)
  Alcotest.(check bool) "disabled" false (T.enabled ());
  let c = T.Counter.create "test.off.counter" in
  let g = T.Gauge.create "test.off.gauge" in
  let h = T.Histogram.create "test.off.hist" in
  T.Counter.add c 7;
  T.Gauge.set g 9.0;
  T.Histogram.observe h 1.0;
  T.Journal.record ~kind:"test" "dropped";
  let ran = ref false in
  let v = T.Span.time "test.off.span" (fun () -> ran := true; 42) in
  Alcotest.(check int) "span still runs body" 42 v;
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check int) "counter untouched" 0 (T.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (T.Gauge.value g);
  Alcotest.(check int) "histogram untouched" 0 (T.Histogram.count h);
  Alcotest.(check int) "journal untouched" 0 (T.Journal.total ())

(* --- spans ----------------------------------------------------------- *)

let test_span_aggregates_and_exceptions () =
  with_telemetry @@ fun () ->
  let s = T.Span.create "test.span" in
  ignore (T.Span.with_ s (fun () -> Sys.opaque_identity 1));
  (try T.Span.with_ s (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "both runs counted" 2 (T.Span.count s);
  Alcotest.(check bool) "wall accumulated" true (T.Span.wall_seconds s >= 0.0);
  Alcotest.(check bool) "max <= total" true
    (T.Span.wall_max s <= T.Span.wall_seconds s +. 1e-12)

let test_span_sim_time () =
  with_telemetry @@ fun () ->
  let now = ref 10.0 in
  T.set_sim_clock (Some (fun () -> !now));
  Fun.protect ~finally:(fun () -> T.set_sim_clock None) @@ fun () ->
  let s = T.Span.create "test.span.sim" in
  T.Span.with_ s (fun () -> now := 13.5);
  Alcotest.(check (float 1e-9)) "sim duration" 3.5 (T.Span.sim_seconds s);
  (match T.Journal.entries () with _ -> ());
  T.Journal.record ~kind:"test" "stamped";
  match T.Journal.entries () with
  | [ e ] -> Alcotest.(check (option (float 1e-9))) "sim stamp" (Some 13.5) e.T.Journal.sim
  | l -> Alcotest.fail (Printf.sprintf "expected one entry, got %d" (List.length l))

let test_span_sim_clock_mid_span () =
  with_telemetry @@ fun () ->
  let now = ref 100.0 in
  Fun.protect ~finally:(fun () -> T.set_sim_clock None) @@ fun () ->
  (* Clock installed mid-span: no start stamp, so the region records
     wall time only — a partial sim delta would be meaningless. *)
  let s1 = T.Span.create "test.span.midinstall" in
  T.Span.with_ s1 (fun () ->
      T.set_sim_clock (Some (fun () -> !now));
      now := 107.0);
  Alcotest.(check int) "run counted" 1 (T.Span.count s1);
  Alcotest.(check (float 1e-9)) "no sim with half a stamp" 0.0
    (T.Span.sim_seconds s1);
  (* Clock removed mid-span: same rule from the other side. *)
  let s2 = T.Span.create "test.span.midremove" in
  T.Span.with_ s2 (fun () -> T.set_sim_clock None);
  Alcotest.(check int) "run counted" 1 (T.Span.count s2);
  Alcotest.(check (float 1e-9)) "no sim when removed mid-span" 0.0
    (T.Span.sim_seconds s2);
  (* Clock present at both ends again: deltas resume accumulating. *)
  T.set_sim_clock (Some (fun () -> !now));
  T.Span.with_ s2 (fun () -> now := !now +. 2.25);
  Alcotest.(check (float 1e-9)) "sim resumes" 2.25 (T.Span.sim_seconds s2)

let test_prometheus_span_golden () =
  with_telemetry @@ fun () ->
  (* A uniquely-prefixed span: its exposition block (TYPE lines and the
     deterministic _count sample) must appear verbatim; the
     _seconds_total sample is host-timed, so only its shape is checked. *)
  let s = T.Span.create "test.promgold.span" in
  ignore (T.Span.with_ s (fun () -> Sys.opaque_identity 1));
  ignore (T.Span.with_ s (fun () -> Sys.opaque_identity 2));
  let prom = T.render T.Prom in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prom has " ^ needle) true (contains prom needle))
    [
      "# TYPE test_promgold_span_seconds_total counter";
      "# TYPE test_promgold_span_count counter";
      "test_promgold_span_count 2";
    ];
  let has_sample =
    String.split_on_char '\n' prom
    |> List.exists (fun l ->
           match String.split_on_char ' ' l with
           | [ "test_promgold_span_seconds_total"; v ] ->
               (match float_of_string_opt v with
               | Some f -> f >= 0.0
               | None -> false)
           | _ -> false)
  in
  Alcotest.(check bool) "seconds_total sample well-formed" true has_sample

(* --- exporters ------------------------------------------------------- *)

let test_exporters_render () =
  with_telemetry @@ fun () ->
  let c = T.Counter.create "test.render.counter" in
  T.Counter.add c 3;
  let h = T.Histogram.create ~lo:1.0 ~buckets_per_decade:1 ~decades:2 "test.render.hist" in
  T.Histogram.observe h 5.0;
  T.Journal.record ~kind:"test" "one event";
  let text = T.render T.Text in
  Alcotest.(check bool) "text names counter" true
    (contains text "test.render.counter");
  let json = T.render T.Json in
  Alcotest.(check bool) "json has counter line" true
    (contains json
       "{\"type\":\"counter\",\"name\":\"test.render.counter\",\"value\":3}");
  Alcotest.(check bool) "json has journal line" true
    (contains json "\"detail\":\"one event\"");
  let prom = T.render T.Prom in
  Alcotest.(check bool) "prom sanitizes names" true
    (contains prom "test_render_counter 3");
  Alcotest.(check bool) "prom cumulative buckets" true
    (contains prom "test_render_hist_bucket{le=\"10\"} 1");
  Alcotest.(check bool) "prom overflow bucket" true
    (contains prom "test_render_hist_bucket{le=\"+Inf\"} 1")

let test_prometheus_golden () =
  with_telemetry @@ fun () ->
  (* Uniquely-prefixed metrics that sort adjacently under prom_name, so
     the exact consecutive block below is stable no matter what the rest
     of the suite registered before this test. *)
  let c = T.Counter.create "test.prom.gold.a" in
  T.Counter.add c 7;
  let g = T.Gauge.create "test.prom.gold.b" in
  T.Gauge.set g 2.5;
  let h =
    T.Histogram.create ~lo:1.0 ~buckets_per_decade:1 ~decades:1
      "test.prom.gold.h"
  in
  T.Histogram.observe h 5.0;
  T.Histogram.observe h 20.0;
  let prom = T.render T.Prom in
  let golden =
    String.concat "\n"
      [
        "# TYPE test_prom_gold_a counter";
        "test_prom_gold_a 7";
        "# TYPE test_prom_gold_b gauge";
        "test_prom_gold_b 2.5";
        "# TYPE test_prom_gold_h histogram";
        "test_prom_gold_h_bucket{le=\"10\"} 1";
        "test_prom_gold_h_bucket{le=\"+Inf\"} 2";
        "test_prom_gold_h_sum 25";
        "test_prom_gold_h_count 2";
      ]
  in
  Alcotest.(check bool)
    "golden block present verbatim (names sanitized, kinds interleaved)" true
    (contains prom golden);
  (* Global ordering: every # TYPE family name is non-decreasing, except
     the two families one span emits back-to-back (_seconds_total then
     _count). *)
  let type_names =
    String.split_on_char '\n' prom
    |> List.filter_map (fun l ->
           match String.split_on_char ' ' l with
           | [ "#"; "TYPE"; name; _kind ] -> Some name
           | _ -> None)
  in
  Alcotest.(check bool) "several families rendered" true
    (List.length type_names >= 3);
  let span_pair a b =
    let suffix = "_seconds_total" in
    String.length a > String.length suffix
    && String.sub a
         (String.length a - String.length suffix)
         (String.length suffix)
       = suffix
    && b
       = String.sub a 0 (String.length a - String.length suffix) ^ "_count"
  in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
        if not (String.compare a b <= 0 || span_pair a b) then
          Alcotest.failf "families out of order: %s before %s" a b;
        check_sorted rest
    | _ -> ()
  in
  check_sorted type_names

let test_format_of_string () =
  Alcotest.(check bool) "text" true (T.format_of_string "text" = Ok T.Text);
  Alcotest.(check bool) "json" true (T.format_of_string "json" = Ok T.Json);
  Alcotest.(check bool) "prom" true (T.format_of_string "prom" = Ok T.Prom);
  match T.format_of_string "yaml" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "yaml should be rejected"

let suite =
  [
    Alcotest.test_case "histogram: exact bucket boundaries" `Quick
      test_histogram_bucket_boundaries;
    Alcotest.test_case "histogram: observe/sum/percentile" `Quick
      test_histogram_observe_and_percentile;
    Alcotest.test_case "histogram: zero/negative/NaN/boundary edges" `Quick
      test_histogram_edge_observations;
    Alcotest.test_case "registry: idempotent create, type clash rejected"
      `Quick test_registry_idempotent;
    Alcotest.test_case "reset zeroes values, keeps handles" `Quick
      test_reset_keeps_registry;
    Alcotest.test_case "gauge: set_max high watermark" `Quick test_gauge_set_max;
    Alcotest.test_case "journal: ring wrap keeps the newest entries" `Quick
      test_journal_ring_wrap;
    Alcotest.test_case "disabled: all updates are no-ops" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "span: aggregates, survives exceptions" `Quick
      test_span_aggregates_and_exceptions;
    Alcotest.test_case "span: sim-time durations and stamps" `Quick
      test_span_sim_time;
    Alcotest.test_case "span: sim clock installed/removed mid-span" `Quick
      test_span_sim_clock_mid_span;
    Alcotest.test_case "exporters: prometheus span summary block" `Quick
      test_prometheus_span_golden;
    Alcotest.test_case "exporters: text/json/prom sanity" `Quick
      test_exporters_render;
    Alcotest.test_case "exporters: prometheus golden block and ordering"
      `Quick test_prometheus_golden;
    Alcotest.test_case "format_of_string" `Quick test_format_of_string;
  ]
