let () =
  Alcotest.run "apple"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("lp", Test_lp.suite);
      ("lp-props", Test_lp_props.suite);
      ("parallel", Test_parallel.suite);
      ("telemetry", Test_telemetry.suite);
      ("bdd", Test_bdd.suite);
      ("classifier", Test_classifier.suite);
      ("topology", Test_topology.suite);
      ("traffic", Test_traffic.suite);
      ("sim", Test_sim.suite);
      ("vnf", Test_vnf.suite);
      ("dataplane", Test_dataplane.suite);
      ("optimizer", Test_optimizer.suite);
      ("subclass", Test_subclass.suite);
      ("failover", Test_failover.suite);
      ("orchestrator", Test_orchestrator.suite);
      ("baselines", Test_baselines.suite);
      ("prototype", Test_prototype.suite);
      ("integration", Test_integration.suite);
      ("engines", Test_engines.suite);
      ("sched", Test_sched.suite);
      ("rewriting", Test_rewriting.suite);
      ("packetsim", Test_packetsim.suite);
      ("tcp", Test_tcp.suite);
      ("aggregation", Test_aggregation.suite);
      ("verify", Test_verify.suite);
      ("obs", Test_obs.suite);
      ("policy-file", Test_policy_file.suite);
      ("chaos", Test_chaos.suite);
      ("goldens", Test_goldens.suite);
      ("soak", Test_soak.suite);
      ("bench-args", Test_bench_args.suite);
      ("fuzz", Test_fuzz.suite);
    ]
