(* Differential regression: every golden artifact re-renders
   byte-identically.  On drift the failure message carries a unified
   diff; refresh intentionally with [make goldens] and review the diff
   like any other code change (see README). *)

module Goldens = Apple_chaos.Goldens

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_entry (name, render) () =
  let path = Filename.concat "goldens" (name ^ ".txt") in
  if not (Sys.file_exists path) then
    Alcotest.fail
      (Printf.sprintf "missing golden %s — record it with `make goldens`" path);
  let expected = read_file path in
  let actual = render () in
  let d = Goldens.diff ~expected ~actual in
  if d <> "" then
    Alcotest.fail
      (Printf.sprintf
         "golden %s drifted (- recorded / + current); if intentional, \
          refresh with `make goldens` and commit the diff:\n%s"
         name d)

let test_diff_format () =
  Alcotest.(check string)
    "equal texts diff to empty" ""
    (Goldens.diff ~expected:"a\nb\n" ~actual:"a\nb\n");
  let d = Goldens.diff ~expected:"a\nb\nc\n" ~actual:"a\nx\nc\n" in
  Alcotest.(check string) "readable unified diff" "  a\n- b\n+ x\n  c\n" d

let suite =
  Alcotest.test_case "diff format" `Quick test_diff_format
  :: List.map
       (fun entry ->
         Alcotest.test_case ("golden " ^ fst entry) `Quick (check_entry entry))
       Goldens.entries
