(* Differential regression: every golden artifact re-renders
   byte-identically.  On drift the failure message carries a unified
   diff; refresh intentionally with [make goldens] and review the diff
   like any other code change (see README). *)

module Goldens = Apple_chaos.Goldens

let check_entry (name, render) () =
  let path = Filename.concat "goldens" (name ^ ".txt") in
  match Goldens.check ~path ~actual:(render ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_diff_format () =
  Alcotest.(check string)
    "equal texts diff to empty" ""
    (Goldens.diff ~expected:"a\nb\n" ~actual:"a\nb\n");
  let d = Goldens.diff ~expected:"a\nb\nc\n" ~actual:"a\nx\nc\n" in
  Alcotest.(check string) "readable unified diff" "  a\n- b\n+ x\n  c\n" d

(* An empty golden against real output must show every line as added —
   not claim equality (the empty file splits to zero lines). *)
let test_empty_golden_diff () =
  Alcotest.(check string)
    "all lines added" "+ x\n+ y\n"
    (Goldens.diff ~expected:"" ~actual:"x\ny\n");
  Alcotest.(check string)
    "all lines removed" "- x\n- y\n"
    (Goldens.diff ~expected:"x\ny\n" ~actual:"")

(* Texts that differ only in the trailing newline split into identical
   line arrays; the diff must say so explicitly instead of rendering a
   dump with no - / + markers. *)
let test_trailing_newline_diff () =
  let d = Goldens.diff ~expected:"a\nb" ~actual:"a\nb\n" in
  Alcotest.(check string)
    "explicit trailing-newline message"
    "(no line differs: the texts disagree only on the trailing newline)\n" d;
  let d' = Goldens.diff ~expected:"a\nb\n" ~actual:"a\nb" in
  Alcotest.(check string) "symmetric" d d'

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* A missing golden must point at `make goldens`, not just error out. *)
let test_missing_golden_names_refresh () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "no_such_golden.txt" in
  if Sys.file_exists path then Sys.remove path;
  match Goldens.check ~path ~actual:"anything\n" with
  | Ok () -> Alcotest.fail "missing golden accepted"
  | Error msg ->
      Alcotest.(check bool)
        "names make goldens" true
        (contains ~needle:"make goldens" msg);
      Alcotest.(check bool) "names the path" true (contains ~needle:path msg)

(* A stale golden must fail with the drift diff and the refresh hint. *)
let test_stale_golden_names_refresh () =
  let path = Filename.temp_file "apple_golden" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "old line\n";
      (match Goldens.check ~path ~actual:"new line\n" with
      | Ok () -> Alcotest.fail "stale golden accepted"
      | Error msg ->
          Alcotest.(check bool)
            "names make goldens" true
            (contains ~needle:"make goldens" msg);
          Alcotest.(check bool)
            "carries the diff" true
            (contains ~needle:"- old line" msg
            && contains ~needle:"+ new line" msg));
      (* An empty recorded golden behaves like any other stale golden. *)
      write_file path "";
      (match Goldens.check ~path ~actual:"fresh\n" with
      | Ok () -> Alcotest.fail "empty golden accepted non-empty output"
      | Error msg ->
          Alcotest.(check bool)
            "empty golden shows additions" true
            (contains ~needle:"+ fresh" msg));
      (* And matching output still passes against an empty golden. *)
      match Goldens.check ~path ~actual:"" with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("empty golden vs empty output: " ^ msg))

(* The fig6_compiled golden is recorded under --dataplane compiled; the
   interpreter must reproduce the very same bytes, making the golden a
   cross-engine equivalence pin, not just a stability pin. *)
let test_fig6_interp_matches_compiled_golden () =
  let path = Filename.concat "goldens" "fig6_compiled.txt" in
  match
    Goldens.check ~path
      ~actual:(Goldens.fig6_packet ~mode:Apple_dataplane.Compiled.Interp ())
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("interpreter diverged from compiled golden: " ^ msg)

let suite =
  [
    Alcotest.test_case "interp matches fig6_compiled golden" `Quick
      test_fig6_interp_matches_compiled_golden;
    Alcotest.test_case "diff format" `Quick test_diff_format;
    Alcotest.test_case "empty golden diff" `Quick test_empty_golden_diff;
    Alcotest.test_case "trailing newline diff" `Quick test_trailing_newline_diff;
    Alcotest.test_case "missing golden names make goldens" `Quick
      test_missing_golden_names_refresh;
    Alcotest.test_case "stale golden names make goldens" `Quick
      test_stale_golden_names_refresh;
  ]
  @ List.map
      (fun entry ->
        Alcotest.test_case ("golden " ^ fst entry) `Quick (check_entry entry))
      Goldens.entries
