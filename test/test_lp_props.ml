(* Property tests for the LP layer (qcheck): random small feasible LPs
   must solve to Optimal, the reported point must satisfy every
   constraint, the objective must beat the feasibility witness, and
   re-solving must be bit-identical.  Feasibility is guaranteed by
   construction: each case carries a witness point x0 inside the variable
   boxes, and every constraint's rhs is derived from lhs(x0) with
   non-negative slack. *)

module M = Apple_lp.Model

type lp_case = {
  ubs : float array;  (* per-var upper bound; lb = 0 *)
  objs : float array;  (* minimization objective *)
  x0 : float array;  (* feasibility witness, 0 <= x0 <= ubs *)
  constrs : (float array * [ `Le | `Ge | `Eq ] * float) list;
      (* (coefs, sense, slack >= 0); rhs = lhs(x0) +/- slack *)
}

let dot coefs x =
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (c *. x.(i))) coefs;
  !acc

let rhs_of case (coefs, sense, slack) =
  let lhs0 = dot coefs case.x0 in
  match sense with `Le -> lhs0 +. slack | `Ge -> lhs0 -. slack | `Eq -> lhs0

let gen_case =
  let open QCheck.Gen in
  int_range 1 5 >>= fun n ->
  array_size (return n) (float_range 0.5 10.0) >>= fun ubs ->
  array_size (return n) (float_range (-3.0) 3.0) >>= fun objs ->
  array_size (return n) (float_range 0.0 1.0) >>= fun fracs ->
  let x0 = Array.mapi (fun i f -> f *. ubs.(i)) fracs in
  int_range 1 4 >>= fun nc ->
  list_repeat nc
    ( array_size (return n) (float_range (-3.0) 3.0) >>= fun coefs ->
      oneofl [ `Le; `Ge; `Eq ] >>= fun sense ->
      float_range 0.0 5.0 >>= fun slack -> return (coefs, sense, slack) )
  >>= fun constrs -> return { ubs; objs; x0; constrs }

let print_case case =
  let arr a =
    "[" ^ String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%g") a)) ^ "]"
  in
  Printf.sprintf "ubs=%s objs=%s x0=%s constrs=[%s]" (arr case.ubs)
    (arr case.objs) (arr case.x0)
    (String.concat " & "
       (List.map
          (fun ((coefs, sense, _) as c) ->
            Printf.sprintf "%s %s %g" (arr coefs)
              (match sense with `Le -> "<=" | `Ge -> ">=" | `Eq -> "=")
              (rhs_of case c))
          case.constrs))

let arb_case = QCheck.make ~print:print_case gen_case

let build case =
  let t = M.create () in
  let vars =
    Array.mapi (fun i ub -> M.add_var t ~lb:0.0 ~ub ~obj:case.objs.(i) ()) case.ubs
  in
  List.iter
    (fun ((coefs, sense, _) as c) ->
      let terms =
        Array.to_list (Array.mapi (fun i coef -> (coef, vars.(i))) coefs)
      in
      let sense =
        match sense with `Le -> M.Le | `Ge -> M.Ge | `Eq -> M.Eq
      in
      M.add_constraint t terms sense (rhs_of case c))
    case.constrs;
  t

(* Own feasibility check at 1e-5 — independent of Model.feasible_with so
   a bug there cannot mask a solver bug. *)
let feasible case x =
  let tol = 1e-5 in
  let ok = ref true in
  Array.iteri
    (fun i v -> if v < -.tol || v > case.ubs.(i) +. tol then ok := false)
    x;
  List.iter
    (fun ((coefs, sense, _) as c) ->
      let lhs = dot coefs x and rhs = rhs_of case c in
      match sense with
      | `Le -> if lhs > rhs +. tol then ok := false
      | `Ge -> if lhs < rhs -. tol then ok := false
      | `Eq -> if abs_float (lhs -. rhs) > tol then ok := false)
    case.constrs;
  !ok

let prop_optimal =
  QCheck.Test.make ~count:300 ~name:"feasible-by-construction LPs solve to Optimal"
    arb_case (fun case ->
      let sol = M.solve_lp (build case) in
      sol.M.status = M.Optimal)

let prop_solution_feasible =
  QCheck.Test.make ~count:300 ~name:"solver's point satisfies every constraint"
    arb_case (fun case ->
      let sol = M.solve_lp (build case) in
      sol.M.status <> M.Optimal || feasible case sol.M.values)

let prop_beats_witness =
  QCheck.Test.make ~count:300
    ~name:"solver objective <= any feasible point's (minimization)" arb_case
    (fun case ->
      let sol = M.solve_lp (build case) in
      sol.M.status <> M.Optimal
      || sol.M.objective <= dot case.objs case.x0 +. 1e-6)

let prop_deterministic =
  QCheck.Test.make ~count:150 ~name:"solving twice is bit-identical" arb_case
    (fun case ->
      let s1 = M.solve_lp (build case) in
      let s2 = M.solve_lp (build case) in
      Int64.bits_of_float s1.M.objective = Int64.bits_of_float s2.M.objective
      && Array.length s1.M.values = Array.length s2.M.values
      && Array.for_all2
           (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
           s1.M.values s2.M.values)

(* The simplex/model trace points must stay at debug severity: solving
   well-posed models emits no warnings even with every source enabled. *)
let test_no_warnings_during_solving () =
  let saved_reporter = Logs.reporter () in
  let saved_level = Logs.level () in
  let warnings = ref 0 and debugs = ref 0 in
  let counting_reporter =
    {
      Logs.report =
        (fun _src level ~over k _msgf ->
          (match level with
          | Logs.Warning | Logs.Error -> incr warnings
          | Logs.Debug -> incr debugs
          | _ -> ());
          over ();
          k ());
    }
  in
  Logs.set_reporter counting_reporter;
  Logs.set_level ~all:true (Some Logs.Debug);
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter saved_reporter;
      Logs.set_level ~all:true saved_level)
    (fun () ->
      let s = Helpers.small_scenario ~max_classes:12 () in
      ignore (Apple_core.Optimization_engine.solve s);
      ignore
        (Apple_core.Optimization_engine.solve
           ~method_:Apple_core.Optimization_engine.Per_class ~jobs:1 s));
  Alcotest.(check int) "no warnings while solving" 0 !warnings;
  Alcotest.(check bool) "trace points fired" true (!debugs > 0)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_optimal; prop_solution_feasible; prop_beats_witness; prop_deterministic ]
  @ [
      Alcotest.test_case "no warnings during solving" `Quick
        test_no_warnings_during_solving;
    ]
