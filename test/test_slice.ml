(* Multi-tenant slicing: spec validation, trace language, lifecycle
   edges (depart/re-admit reusing freed tag space), rejection purity
   (a refused admission leaves the substrate byte-identical — QCheck),
   forced verifier rejections via the chaos hook, and determinism
   across jobs values. *)

module Sl = Apple_slice.Slice
module Tr = Apple_slice.Trace
module B = Apple_topology.Builders
module Subclass = Apple_core.Subclass

let check = Alcotest.check
let fail = Alcotest.fail
let topo () = B.internet2 ()

let synth ?(seed = 7) ?(tenant = "acme") ?(name = "web") ?isolated ?demand ?nat
    ?(rate = 400.0) ?(classes = 2) () =
  Sl.synth_spec (topo ()) ~seed ~tenant ~name ?isolated ?demand ?nat ~rate
    ~classes ()

(* ---- spec validation ----------------------------------------------- *)

let test_validate () =
  let t = topo () in
  (match Sl.validate_spec t (synth ()) with
  | Ok () -> ()
  | Error m -> fail ("synthetic spec invalid: " ^ m));
  let bad_rate = synth () in
  let bad_rate = { bad_rate with Sl.sla = { bad_rate.Sl.sla with Sl.rate_mbps = -1.0 } } in
  (match Sl.validate_spec t bad_rate with
  | Error _ -> ()
  | Ok () -> fail "negative rate accepted");
  let s = synth () in
  let low_demand = { s with Sl.sla = { s.Sl.sla with Sl.demand_mbps = 1.0 } } in
  (match Sl.validate_spec t low_demand with
  | Error m ->
      check Alcotest.bool "mentions demand" true
        (String.length m > 0)
  | Ok () -> fail "demand below floor accepted");
  let bad_tenant = { s with Sl.tenant = "no spaces!" } in
  (match Sl.validate_spec t bad_tenant with
  | Error _ -> ()
  | Ok () -> fail "bad tenant ident accepted");
  let bad_shares =
    {
      s with
      Sl.classes =
        List.map (fun c -> { c with Sl.share = 0.9 }) s.Sl.classes;
    }
  in
  match Sl.validate_spec t bad_shares with
  | Error _ -> ()
  | Ok () -> fail "shares not summing to 1 accepted"

let test_synth_deterministic () =
  let a = synth ~seed:42 () and b = synth ~seed:42 () in
  check Alcotest.bool "same seed, same spec" true (a = b);
  let c = synth ~seed:43 () in
  check Alcotest.bool "different seed, different classes" true
    (a.Sl.classes <> c.Sl.classes || a = c)

(* ---- trace language ------------------------------------------------ *)

let drill_text =
  "# demo\n\
   cores 24\n\
   at 0 arrive acme web rate=500 classes=3 seed=11\n\
   at 1 arrive bob db rate=300 demand=900 classes=2 weight=2 isolated nat \
   seed=12\n\
   at 2 depart acme web\n"

let test_trace_roundtrip () =
  match Tr.parse drill_text with
  | Error m -> fail ("parse failed: " ^ m)
  | Ok t -> (
      check Alcotest.int "entries" 3 (List.length t.Tr.entries);
      check (Alcotest.option Alcotest.int) "cores" (Some 24) t.Tr.cores;
      let printed = Tr.to_string t in
      match Tr.parse printed with
      | Error m -> fail ("reparse failed: " ^ m)
      | Ok t2 ->
          check Alcotest.string "roundtrip" printed (Tr.to_string t2))

let test_trace_rejects () =
  (match Tr.parse "at -1 arrive a b rate=1 classes=1" with
  | Error m ->
      check Alcotest.bool "line numbered" true
        (String.length m >= 6 && String.sub m 0 6 = "line 1")
  | Ok _ -> fail "negative time accepted");
  (match Tr.parse "at 5 arrive a b rate=1 classes=1\nat 3 depart a b" with
  | Error m ->
      check Alcotest.bool "line 2 flagged" true
        (String.length m >= 6 && String.sub m 0 6 = "line 2")
  | Ok _ -> fail "backwards time accepted");
  (match Tr.parse "at 1 arrive a b classes=1" with
  | Error _ -> ()
  | Ok _ -> fail "arrive without rate accepted");
  match Tr.parse "at 1 frobnicate a b" with
  | Error _ -> ()
  | Ok _ -> fail "unknown verb accepted"

let test_trace_example_file () =
  (* The committed drill must keep producing the documented decision
     mix.  dune runtest runs from the test dir; dune exec from root. *)
  let path =
    List.find Sys.file_exists
      [ "../examples/slices_internet2.trace"; "examples/slices_internet2.trace" ]
  in
  let tr = match Tr.load path with Ok t -> t | Error m -> fail m in
  let _mgr, o = Tr.run (topo ()) tr in
  check Alcotest.int "admitted" 5 o.Tr.admitted;
  check Alcotest.int "capacity rejections" 1 o.Tr.rejected_capacity;
  check Alcotest.int "tag-space rejections" 0 o.Tr.rejected_tag_space;
  check Alcotest.int "verifier rejections" 0 o.Tr.rejected_verifier;
  check Alcotest.int "departed" 1 o.Tr.departed;
  check Alcotest.int "residents" 4 o.Tr.residents;
  (* every committed state passed the admission gate *)
  check Alcotest.int "verifier passes" (o.Tr.admitted + o.Tr.departed)
    o.Tr.verifier_passes

let test_trace_jobs_invariant () =
  let tr = Tr.synth ~seed:5 ~events:10 in
  let _m1, o1 = Tr.run ~host_cores:32 (topo ()) tr in
  let _m2, o2 = Tr.run ~host_cores:32 ~jobs:2 (topo ()) tr in
  check Alcotest.string "render identical across jobs" (Tr.render o1)
    (Tr.render o2)

(* ---- lifecycle edges ----------------------------------------------- *)

let admit_ok mgr spec =
  match Sl.admit mgr spec with
  | Ok a -> a
  | Error r ->
      fail
        (Format.asprintf "admission of %s/%s refused: %a" spec.Sl.tenant
           spec.Sl.name Sl.pp_reason r)

let depart_ok mgr ~tenant ~name =
  match Sl.depart mgr ~tenant ~name with
  | Ok d -> d
  | Error m -> fail ("depart failed: " ^ m)

let test_depart_readmit_reuses_tags () =
  let mgr = Sl.create ~host_cores:32 (topo ()) in
  let a = synth ~seed:11 ~tenant:"alpha" ~name:"web" () in
  let b = synth ~seed:22 ~tenant:"beta" ~name:"cdn" ~nat:true ~classes:3 () in
  let _ = admit_ok mgr a in
  let adm_b = admit_ok mgr b in
  let fp_both = Sl.fingerprint mgr in
  let d = depart_ok mgr ~tenant:"beta" ~name:"cdn" in
  check Alcotest.int "one resident left" 1 d.Sl.residents;
  let adm_b2 = admit_ok mgr b in
  (* the freed tag ids are re-used: identical tag footprint and an
     identical substrate digest, even though the slice id moved on *)
  check Alcotest.int "same global tags" adm_b.Sl.global_tags
    adm_b2.Sl.global_tags;
  check Alcotest.int "same tag headroom" adm_b.Sl.tags_left adm_b2.Sl.tags_left;
  check Alcotest.bool "fresh slice id" true
    (adm_b2.Sl.slice_id > adm_b.Sl.slice_id);
  check Alcotest.string "substrate digest restored" fp_both
    (Sl.fingerprint mgr)

let test_depart_to_empty () =
  let mgr = Sl.create ~host_cores:32 (topo ()) in
  let empty_fp = Sl.fingerprint mgr in
  let a = synth ~seed:3 () in
  let _ = admit_ok mgr a in
  let d = depart_ok mgr ~tenant:"acme" ~name:"web" in
  check Alcotest.int "no residents" 0 d.Sl.residents;
  check Alcotest.bool "freed instances" true (d.Sl.freed_instances > 0);
  check Alcotest.bool "freed cores" true (d.Sl.freed_cores > 0);
  check Alcotest.string "back to empty digest" empty_fp (Sl.fingerprint mgr);
  (* and the substrate is immediately reusable *)
  let _ = admit_ok mgr a in
  check Alcotest.int "readmitted" 1 (List.length (Sl.residents mgr))

let test_duplicate_admit_raises () =
  let mgr = Sl.create ~host_cores:32 (topo ()) in
  let a = synth () in
  let _ = admit_ok mgr a in
  match Sl.admit mgr a with
  | exception Invalid_argument _ -> ()
  | Ok _ -> fail "duplicate admission accepted"
  | Error _ -> fail "duplicate admission rejected instead of raising"

let test_depart_missing () =
  let mgr = Sl.create ~host_cores:32 (topo ()) in
  (match Sl.depart mgr ~tenant:"ghost" ~name:"x" with
  | Error _ -> ()
  | Ok _ -> fail "departing from empty substrate succeeded");
  let _ = admit_ok mgr (synth ()) in
  match Sl.depart mgr ~tenant:"ghost" ~name:"x" with
  | Error _ -> ()
  | Ok _ -> fail "departing a non-resident succeeded"

let test_isolated_admission () =
  let mgr = Sl.create ~host_cores:64 (topo ()) in
  let shared = synth ~seed:4 ~tenant:"pub" ~name:"cdn" ~classes:3 () in
  let iso = synth ~seed:9 ~tenant:"bank" ~name:"pay" ~isolated:true () in
  let _ = admit_ok mgr shared in
  let adm = admit_ok mgr iso in
  check Alcotest.bool "gate certified the joint state" true
    (adm.Sl.verified_subclasses > 0);
  let st = Sl.stats mgr in
  check Alcotest.int "two gate passes" 2 st.Sl.verifier_passes;
  check Alcotest.int "no rejections" 0
    (st.Sl.rejected_capacity + st.Sl.rejected_tag_space
   + st.Sl.rejected_verifier)

(* ---- rejection purity ---------------------------------------------- *)

let test_capacity_rejection_pure () =
  let mgr = Sl.create ~host_cores:16 (topo ()) in
  let _ = admit_ok mgr (synth ~seed:5 ~rate:300.0 ()) in
  let fp = Sl.fingerprint mgr in
  let stats_before = Sl.stats mgr in
  let big = synth ~seed:6 ~tenant:"hog" ~name:"bulk" ~rate:50000.0 ~classes:4 () in
  (match Sl.admit mgr big with
  | Error (Sl.Capacity _) -> ()
  | Error r -> fail (Format.asprintf "wrong reason: %a" Sl.pp_reason r)
  | Ok _ -> fail "50 Gbps admitted on a 16-core/host substrate");
  check Alcotest.string "substrate untouched" fp (Sl.fingerprint mgr);
  check Alcotest.int "residents unchanged" 1 (List.length (Sl.residents mgr));
  let st = Sl.stats mgr in
  check Alcotest.int "capacity rejection counted"
    (stats_before.Sl.rejected_capacity + 1)
    st.Sl.rejected_capacity;
  check Alcotest.int "no extra gate pass" stats_before.Sl.verifier_passes
    st.Sl.verifier_passes

let test_verifier_rejection_pure () =
  let mgr = Sl.create ~host_cores:32 (topo ()) in
  let _ = admit_ok mgr (synth ~seed:5 ()) in
  let fp = Sl.fingerprint mgr in
  (* corrupt the candidate pinning after rule generation: the gate must
     catch it, refuse, and leave the installed state alone *)
  Sl.set_chaos_hook mgr
    (Some
       (fun _s asg _built ->
         match asg.Subclass.subclasses with
         | sub :: _ ->
             Hashtbl.remove asg.Subclass.instance_of (Subclass.key sub, 0)
         | [] -> ()));
  (match Sl.admit mgr (synth ~seed:8 ~tenant:"evil" ~name:"x" ()) with
  | Error (Sl.Verifier m) ->
      check Alcotest.bool "carries a witness" true (String.length m > 0)
  | Error r -> fail (Format.asprintf "wrong reason: %a" Sl.pp_reason r)
  | Ok _ -> fail "corrupted candidate admitted");
  Sl.set_chaos_hook mgr None;
  check Alcotest.string "substrate untouched" fp (Sl.fingerprint mgr);
  let st = Sl.stats mgr in
  check Alcotest.int "verifier rejection counted" 1 st.Sl.rejected_verifier;
  (* the hook is gone: the same spec is admissible now *)
  let _ = admit_ok mgr (synth ~seed:8 ~tenant:"evil" ~name:"x" ()) in
  ()

let prop_rejection_pure =
  QCheck.Test.make ~count:25
    ~name:"rejected admissions leave the substrate byte-identical"
    QCheck.(triple (int_bound 1000) (int_bound 3) bool)
    (fun (seed, extra_classes, nat) ->
      let mgr = Sl.create ~host_cores:16 (topo ()) in
      let _ =
        match Sl.admit mgr (synth ~seed:1 ~rate:200.0 ()) with
        | Ok a -> a
        | Error _ -> QCheck.assume_fail ()
      in
      let fp = Sl.fingerprint mgr in
      (* rates far above a 16-core/host substrate: always refused *)
      let spec =
        synth ~seed ~tenant:"t" ~name:"cand" ~nat
          ~rate:(40000.0 +. float_of_int (seed mod 7) *. 1000.0)
          ~classes:(1 + extra_classes) ()
      in
      match Sl.admit mgr spec with
      | Ok _ -> QCheck.Test.fail_report "absurd rate admitted"
      | Error _ -> String.equal fp (Sl.fingerprint mgr))

(* ---- tag accounting ------------------------------------------------ *)

let test_tag_accounting () =
  let mgr = Sl.create ~host_cores:64 (topo ()) in
  (* NAT chain => header rewriting => dense global tags *)
  let adm = admit_ok mgr (synth ~seed:2 ~nat:true ~classes:3 ()) in
  check Alcotest.bool "global mode consumed tags" true (adm.Sl.global_tags > 0);
  check Alcotest.int "headroom is complement"
    (Apple_dataplane.Tag.max_subclasses - adm.Sl.global_tags)
    adm.Sl.tags_left

let suite =
  [
    Alcotest.test_case "spec validation" `Quick test_validate;
    Alcotest.test_case "synth determinism" `Quick test_synth_deterministic;
    Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace rejects" `Quick test_trace_rejects;
    Alcotest.test_case "example trace decisions" `Slow test_trace_example_file;
    Alcotest.test_case "trace identical across jobs" `Slow
      test_trace_jobs_invariant;
    Alcotest.test_case "depart/re-admit reuses tag space" `Slow
      test_depart_readmit_reuses_tags;
    Alcotest.test_case "depart to empty substrate" `Quick test_depart_to_empty;
    Alcotest.test_case "duplicate admit raises" `Quick
      test_duplicate_admit_raises;
    Alcotest.test_case "depart of non-resident" `Quick test_depart_missing;
    Alcotest.test_case "isolated admission certified" `Slow
      test_isolated_admission;
    Alcotest.test_case "capacity rejection is pure" `Quick
      test_capacity_rejection_pure;
    Alcotest.test_case "verifier rejection is pure" `Quick
      test_verifier_rejection_pure;
    Alcotest.test_case "tag accounting" `Quick test_tag_accounting;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_rejection_pure ]
