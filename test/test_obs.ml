(* Observability subsystem: counters, flight recorder, poller, the
   polled Fig-9 detection mode, and the determinism property (enabling
   observability never changes placements, rule tables or simulation
   results). *)

module C = Apple_core
module H = Helpers
module B = Apple_topology.Builders
module Obs = Apple_obs.Counters
module Flight = Apple_obs.Flight
module Poller = Apple_obs.Poller
module Provenance = Apple_obs.Provenance
module Top = Apple_obs.Top
module Tcam = Apple_dataplane.Tcam
module Rule = Apple_dataplane.Rule
module Walk = Apple_dataplane.Walk
module Nf = Apple_vnf.Nf
module PS = Apple_packetsim.Packet_sim

(* Every test leaves the global switch off and the stores empty. *)
let with_obs f =
  let saved = Obs.enabled () in
  Obs.reset ();
  Flight.clear ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled saved;
      Obs.reset ();
      Flight.clear ())
    f

(* --- counters ------------------------------------------------------- *)

let test_counters_basic () =
  with_obs @@ fun () ->
  Obs.rule_hit ~sw:3 ~uid:7 ~bytes:100;
  Obs.rule_hit ~sw:3 ~uid:7 ~bytes:50;
  Obs.rule_hit ~sw:1 ~uid:2 ~bytes:0;
  let s = Obs.rule_stats ~sw:3 ~uid:7 in
  Alcotest.(check int) "matches" 2 s.Obs.r_matches;
  Alcotest.(check int) "bytes" 150 s.Obs.r_bytes;
  let snap = Obs.rule_snapshot () in
  Alcotest.(check (list (pair (pair int int) int)))
    "snapshot sorted by (sw, uid)"
    [ ((1, 2), 1); ((3, 7), 2) ]
    (List.map (fun (k, st) -> (k, st.Obs.r_matches)) snap);
  let totals = Obs.switch_totals () in
  Alcotest.(check (list (pair int int)))
    "switch totals"
    [ (1, 1); (3, 2) ]
    (List.map (fun (sw, st) -> (sw, st.Obs.r_matches)) totals);
  Obs.inst_packet ~id:5 ~bytes:1500;
  Obs.inst_traffic ~id:5 ~packets:3 ~bytes:4500;
  Obs.inst_drop ~id:5;
  Obs.inst_queue ~id:5 ~depth:4;
  Obs.inst_queue ~id:5 ~depth:2;
  let i = Obs.inst_stats ~id:5 in
  Alcotest.(check int) "inst packets" 4 i.Obs.i_packets;
  Alcotest.(check int) "inst bytes" 6000 i.Obs.i_bytes;
  Alcotest.(check int) "inst drops" 1 i.Obs.i_drops;
  Alcotest.(check int) "queue depth" 2 i.Obs.i_queue_depth;
  Alcotest.(check int) "queue peak" 4 i.Obs.i_queue_peak;
  Obs.reset ();
  Alcotest.(check int) "reset clears rules" 0
    (List.length (Obs.rule_snapshot ()));
  Alcotest.(check int) "reset clears instances" 0
    (List.length (Obs.inst_snapshot ()))

let test_counters_disabled_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  Obs.rule_hit ~sw:0 ~uid:0 ~bytes:99;
  Obs.inst_packet ~id:0 ~bytes:99;
  Flight.clear ();
  Flight.record Flight.Note ~a:1 ();
  Alcotest.(check int) "no rule counted" 0
    (Obs.rule_stats ~sw:0 ~uid:0).Obs.r_matches;
  Alcotest.(check int) "no inst counted" 0
    (Obs.inst_stats ~id:0).Obs.i_packets;
  Alcotest.(check int) "no flight event" 0 (Flight.length ())

(* --- flight recorder ------------------------------------------------ *)

let test_flight_ring_wrap () =
  with_obs @@ fun () ->
  let saved_cap = Flight.capacity () in
  Fun.protect ~finally:(fun () -> Flight.set_capacity saved_cap)
  @@ fun () ->
  Flight.set_capacity 4;
  for i = 0 to 9 do
    Flight.record Flight.Note ~a:i ()
  done;
  Alcotest.(check int) "length capped" 4 (Flight.length ());
  Alcotest.(check int) "total keeps counting" 10 (Flight.total ());
  let survivors = Flight.events () in
  Alcotest.(check (list int)) "oldest evicted, order kept" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Flight.a) survivors);
  List.iteri
    (fun i e ->
      Alcotest.(check int) "seq matches operand" (6 + i) e.Flight.seq)
    survivors

let test_flight_dump_load () =
  with_obs @@ fun () ->
  Flight.record Flight.Walk_start ~a:1 ~b:2 ~c:3 ~d:4 ();
  Flight.record Flight.Rule_match ~a:1 ~b:0 ~c:12 ~d:1 ();
  Flight.record Flight.Violation ~a:2 ~b:1 ();
  let path = Filename.temp_file "apple-flight" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
  @@ fun () ->
  Flight.dump ~path;
  match Flight.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok loaded ->
      Alcotest.(check int) "all events survive" 3 (List.length loaded);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "event round-trips" true
            (a.Flight.seq = b.Flight.seq
            && a.Flight.kind = b.Flight.kind
            && a.Flight.a = b.Flight.a
            && a.Flight.b = b.Flight.b
            && a.Flight.c = b.Flight.c
            && a.Flight.d = b.Flight.d
            && abs_float (a.Flight.time -. b.Flight.time) < 1e-12))
        (Flight.events ()) loaded

let test_flight_load_errors () =
  (match Flight.load ~path:"/nonexistent/apple-flight.bin" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must not load");
  let path = Filename.temp_file "apple-flight" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
  @@ fun () ->
  let oc = open_out_bin path in
  output_string oc "NOTMAGIC and then some garbage";
  close_out oc;
  match Flight.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic must not load"

(* --- poller --------------------------------------------------------- *)

let test_poller_rates () =
  with_obs @@ fun () ->
  let p = Poller.create ~period:0.1 ~alpha:0.5 () in
  Alcotest.(check bool) "stale before first poll" true
    (Poller.staleness p ~now:5.0 = infinity);
  (* First sight: baseline only. *)
  Obs.inst_traffic ~id:9 ~packets:100 ~bytes:150_000;
  Poller.poll p ~now:0.0;
  Alcotest.(check (float 1e-9)) "no rate from one sample" 0.0
    (Poller.inst_rate_pps p 9);
  (* First delta seeds the estimate directly: 100 pkts / 0.1 s. *)
  Obs.inst_traffic ~id:9 ~packets:100 ~bytes:150_000;
  Poller.poll p ~now:0.1;
  Alcotest.(check (float 1e-6)) "seeded rate" 1000.0 (Poller.inst_rate_pps p 9);
  Alcotest.(check (float 1e-6))
    "bps follows bytes"
    (150_000.0 *. 8.0 /. 0.1)
    (Poller.inst_rate_bps p 9);
  (* Steady state stays put; a halved rate moves halfway (alpha 0.5). *)
  Obs.inst_traffic ~id:9 ~packets:50 ~bytes:75_000;
  Poller.poll p ~now:0.2;
  Alcotest.(check (float 1e-6)) "EWMA halfway" 750.0 (Poller.inst_rate_pps p 9);
  Alcotest.(check (float 1e-9)) "staleness" 0.05 (Poller.staleness p ~now:0.25);
  Alcotest.(check int) "three polls" 3 (Poller.polls p);
  Alcotest.(check (list int)) "known instances" [ 9 ] (Poller.known_instances p)

let test_poller_switch_rates () =
  with_obs @@ fun () ->
  let p = Poller.create ~period:1.0 () in
  Obs.rule_hit ~sw:2 ~uid:0 ~bytes:0;
  Poller.poll p ~now:0.0;
  Obs.rule_hit ~sw:2 ~uid:0 ~bytes:0;
  Obs.rule_hit ~sw:2 ~uid:1 ~bytes:0;
  Poller.poll p ~now:1.0;
  Alcotest.(check (float 1e-6)) "switch match rate" 2.0
    (Poller.switch_match_pps p 2);
  Alcotest.(check (list int)) "known switches" [ 2 ] (Poller.known_switches p)

(* --- polled Fig. 9 -------------------------------------------------- *)

let kinds_of (run : C.Prototype.detection_run) =
  List.map (fun e -> e.C.Prototype.kind) run.C.Prototype.det_events

let test_fig9_polled_parity () =
  let seed = 42 in
  let oracle = C.Prototype.overload_detection_experiment ~seed () in
  let polled =
    C.Prototype.overload_detection_experiment ~load_source:(`Polled 0.05) ~seed
      ()
  in
  Alcotest.(check bool) "oracle sees the overload" true
    (List.mem `Overload_detected (kinds_of oracle));
  Alcotest.(check bool) "same event sequence" true
    (kinds_of oracle = kinds_of polled);
  (* Every overload the oracle saw, the polled detector saw — later. *)
  let first_detect run =
    match C.Prototype.detection_latency run with
    | Some l -> l
    | None -> Alcotest.fail "no detection"
  in
  let lo = first_detect oracle and lp = first_detect polled in
  Alcotest.(check bool) "polled detection is delayed" true (lp >= lo);
  Alcotest.(check bool) "but bounded (< 0.5 s)" true (lp < 0.5);
  (* Counters were experiment-local: restored off and empty. *)
  Alcotest.(check bool) "counters restored off" false (Obs.enabled ());
  Alcotest.(check int) "counter store drained" 0
    (List.length (Obs.inst_snapshot ()))

let test_fig9_latency_monotone () =
  let periods = [ 0.01; 0.02; 0.05; 0.1; 0.2 ] in
  let lat = C.Prototype.detection_latency_vs_poll ~seed:42 ~periods in
  Alcotest.(check int) "one latency per period" (List.length periods)
    (List.length lat);
  List.iter
    (fun (p, l) ->
      if l = infinity then Alcotest.failf "period %.2f missed the overload" p)
    lat;
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        Alcotest.(check bool) "latency non-decreasing in poll period" true
          (a <= b +. 1e-9);
        monotone rest
    | _ -> ()
  in
  monotone lat;
  (* Detection needs the EWMA to warm up: at least one full period, and
     not absurdly many. *)
  List.iter
    (fun (p, l) ->
      Alcotest.(check bool) "latency at least one period" true (l >= p -. 1e-9);
      Alcotest.(check bool) "latency under six periods" true (l <= 6.0 *. p))
    lat

(* --- determinism: observability never changes results ---------------- *)

let test_determinism_rules () =
  let build () =
    let s = H.small_scenario ~seed:77 ~total:3000.0 ~max_classes:20 () in
    let p = C.Optimization_engine.solve s in
    let asg = C.Subclass.assign s p in
    C.Rule_generator.build s asg
  in
  Obs.set_enabled false;
  let plain = build () in
  let observed = with_obs (fun () -> build ()) in
  Alcotest.(check int) "same TCAM size" plain.C.Rule_generator.tcam_with_tagging
    observed.C.Rule_generator.tcam_with_tagging;
  let tables b = b.C.Rule_generator.network in
  Array.iteri
    (fun i t ->
      Alcotest.(check bool)
        (Printf.sprintf "switch %d rules byte-identical" i)
        true
        (Tcam.phys_entries t = Tcam.phys_entries (tables observed).(i))
      ;
      Alcotest.(check bool)
        (Printf.sprintf "switch %d vswitch identical" i)
        true
        (Tcam.vswitch_rules t = Tcam.vswitch_rules (tables observed).(i)))
    (tables plain)

let test_determinism_fig9_oracle () =
  let run () = C.Prototype.overload_detection_experiment ~seed:7 () in
  Obs.set_enabled false;
  let plain = run () in
  let observed = with_obs (fun () -> run ()) in
  Alcotest.(check bool) "oracle fig9 unchanged under observability" true
    (plain = observed)

(* --- provenance from a violation dump ------------------------------- *)

let test_violation_dump_provenance () =
  let s = H.small_scenario ~seed:77 ~total:3000.0 ~max_classes:20 () in
  let p = C.Optimization_engine.solve s in
  let asg = C.Subclass.assign s p in
  let built = C.Rule_generator.build s asg in
  let network = built.C.Rule_generator.network in
  (* Inject a fault: drop one switch's vSwitch pipeline, so every walk
     delivered there dies with a vswitch miss. *)
  let victim =
    match
      Array.to_seq network
      |> Seq.filter (fun t -> Tcam.vswitch_rules t <> [])
      |> Seq.uncons
    with
    | Some (t, _) -> t
    | None -> Alcotest.fail "no vswitch rules installed"
  in
  Tcam.set_vswitch victim [];
  let path = Filename.temp_file "apple-flight" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
  @@ fun () ->
  let failed_flow =
    with_obs @@ fun () ->
    (* Re-walk every sub-class representative with flow labels, the way
       [apple verify --flight-out] does on a violation. *)
    let failed = ref None in
    Array.iter
      (fun c ->
        let subs = H.subclasses_of asg c.C.Types.id in
        if subs <> [] then begin
          let prefixes =
            C.Rule_generator.subclass_prefixes c subs
              ~depth:built.C.Rule_generator.split_depth
          in
          List.iteri
            (fun idx sub ->
              match prefixes.(idx) with
              | [] -> ()
              | pfx :: _ -> (
                  let flow = C.Subclass.key sub in
                  match
                    Walk.run network
                      ~path:(Array.to_list c.C.Types.path)
                      ~cls:c.C.Types.id ~src_ip:pfx.C.Types.Prefix.addr ~flow ()
                  with
                  | Ok _ -> ()
                  | Error _ ->
                      if !failed = None then failed := Some flow;
                      Flight.record Flight.Violation ~a:2 ~b:c.C.Types.id
                        ~c:sub.C.Subclass.sub_id ()))
            subs
        end)
      s.C.Types.classes;
    Flight.dump ~path;
    match !failed with
    | Some flow -> flow
    | None -> Alcotest.fail "fault injection produced no failing walk"
  in
  match Flight.load ~path with
  | Error e -> Alcotest.failf "dump did not load: %s" e
  | Ok events ->
      let chain = Provenance.of_events events ~flow:failed_flow in
      Alcotest.(check bool) "chain has matched rules" true
        (chain.Provenance.rules <> []);
      (match chain.Provenance.outcome with
      | `Failed _ -> ()
      | `Ok -> Alcotest.fail "walk into a dead host must not be Ok"
      | `Unknown -> Alcotest.fail "walk end event missing from dump");
      let listing = Provenance.flows events in
      Alcotest.(check bool) "flow listed" true
        (List.mem_assoc failed_flow listing);
      let report = Provenance.render chain in
      Alcotest.(check bool) "render mentions the flow" true
        (String.length report > 0)

(* --- packet sim counters + top -------------------------------------- *)

let test_packetsim_counters_and_top () =
  with_obs @@ fun () ->
  let net = Tcam.network ~num_switches:1 in
  let pfx = C.Types.Prefix.prefix_of_string "10.0.0.0/24" in
  Tcam.add_phys net.(0)
    {
      Rule.priority = 100;
      pmatch = { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ pfx ] };
      action = Rule.Tag_and_deliver { subclass = 0; host = 0 };
    };
  Tcam.add_phys net.(0)
    {
      Rule.priority = 0;
      pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
      action = Rule.Goto_next;
    };
  Tcam.add_vswitch net.(0)
    {
      Rule.v_port = Rule.From_network;
      v_key = Rule.Per_class { cls = 0; subclass = 0 };
      v_action = Rule.To_instance 1;
    };
  Tcam.add_vswitch net.(0)
    {
      Rule.v_port = Rule.From_instance 1;
      v_key = Rule.Per_class { cls = 0; subclass = 0 };
      v_action = Rule.Back_to_network Apple_dataplane.Tag.Fin;
    };
  let inst =
    Apple_vnf.Instance.create ~id:1 ~spec:(Nf.spec Nf.Firewall) ~host:0
  in
  let poller = Poller.create ~period:0.05 () in
  let flows =
    [
      {
        PS.flow_name = "probe";
        cls = 0;
        src_ip = pfx.C.Types.Prefix.addr + 5;
        path = [ 0 ];
        source = PS.Cbr 10_000.0;
        start_at = 0.0;
        stop_at = 0.5;
      };
    ]
  in
  let r =
    PS.run ~seed:3 ~network:net ~instances:[ inst ] ~flows ~duration:0.5
      ~poll:(0.05, fun now -> Poller.poll poller ~now)
      ()
  in
  Alcotest.(check bool) "packets flowed" true (r.PS.total_delivered > 0);
  let st = Obs.inst_stats ~id:1 in
  Alcotest.(check bool) "instance counted its packets" true
    (st.Obs.i_packets > 0);
  Alcotest.(check bool) "rule counters credited" true
    (List.exists
       (fun (_, rs) -> rs.Obs.r_bytes > 0)
       (Obs.rule_snapshot ()));
  Alcotest.(check bool) "poller sampled" true (Poller.polls poller > 0);
  Alcotest.(check bool) "poller sees the instance rate" true
    (Poller.inst_rate_pps poller 1 > 0.0);
  let screen =
    Top.render ~capacities:[ (1, 900.0) ] ~now:0.5 poller
  in
  Alcotest.(check bool) "top shows the instance table" true
    (String.length screen > 0);
  let summary = Top.summary ~now:0.5 poller in
  Alcotest.(check bool) "summary non-empty" true (String.length summary > 0)

let suite =
  [
    Alcotest.test_case "counters: basic accounting" `Quick test_counters_basic;
    Alcotest.test_case "counters: disabled is a no-op" `Quick
      test_counters_disabled_noop;
    Alcotest.test_case "flight: ring wraps, keeps newest" `Quick
      test_flight_ring_wrap;
    Alcotest.test_case "flight: dump/load round-trip" `Quick
      test_flight_dump_load;
    Alcotest.test_case "flight: load rejects bad files" `Quick
      test_flight_load_errors;
    Alcotest.test_case "poller: EWMA rates and staleness" `Quick
      test_poller_rates;
    Alcotest.test_case "poller: switch match rates" `Quick
      test_poller_switch_rates;
    Alcotest.test_case "fig9: polled mode matches the oracle" `Slow
      test_fig9_polled_parity;
    Alcotest.test_case "fig9: latency monotone in poll period" `Slow
      test_fig9_latency_monotone;
    Alcotest.test_case "determinism: rule tables unchanged" `Quick
      test_determinism_rules;
    Alcotest.test_case "determinism: oracle fig9 unchanged" `Quick
      test_determinism_fig9_oracle;
    Alcotest.test_case "provenance: violation dump reconstructs" `Quick
      test_violation_dump_provenance;
    Alcotest.test_case "packetsim: counters, poller and top" `Quick
      test_packetsim_counters_and_top;
  ]
