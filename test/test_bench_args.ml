(* The bench harness's argument parser: unknown names — positional or in
   APPLE_BENCH_ONLY — must error loudly (a typo that silently runs
   nothing, or everything, is how benchmark regressions slip by). *)

module Args = Apple_bench_args.Args

let sections = [ "paper"; "jobs"; "micro"; "soak" ]
let experiments = [ "table1"; "fig6" ]
let parse = Args.parse ~section_names:sections ~experiment_names:experiments

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

let ok = function
  | Ok t -> t
  | Error m -> Alcotest.failf "unexpected parse error: %s" m

let err = function
  | Ok _ -> Alcotest.fail "parse accepted invalid input"
  | Error m -> m

let test_defaults () =
  let t = ok (parse ~argv:[] ~only:None) in
  Alcotest.(check bool) "no json" true (t.Args.json = None);
  Alcotest.(check bool) "no filter" true (t.Args.filter = None);
  List.iter
    (fun n -> Alcotest.(check bool) n true (Args.wants t n))
    (sections @ experiments);
  (* An empty APPLE_BENCH_ONLY means "no filter", not "run nothing". *)
  let t' = ok (parse ~argv:[] ~only:(Some "")) in
  Alcotest.(check bool) "empty only = no filter" true (t'.Args.filter = None)

let test_positional_selection () =
  let t = ok (parse ~argv:[ "jobs"; "table1" ] ~only:None) in
  Alcotest.(check bool) "wants jobs" true (Args.wants t "jobs");
  Alcotest.(check bool) "wants table1" true (Args.wants t "table1");
  Alcotest.(check bool) "not micro" false (Args.wants t "micro")

let test_positional_wins_over_env () =
  let t = ok (parse ~argv:[ "micro" ] ~only:(Some "paper")) in
  Alcotest.(check bool) "positional wins" true (Args.wants t "micro");
  Alcotest.(check bool) "env ignored" false (Args.wants t "paper");
  (* ... and then the env value is not even validated: positional names
     are the selection. *)
  let t' = ok (parse ~argv:[ "micro" ] ~only:(Some "bogus")) in
  Alcotest.(check bool) "env unvalidated when unused" true (Args.wants t' "micro")

let test_unknown_positional () =
  let m = err (parse ~argv:[ "tabel1" ] ~only:None) in
  Alcotest.(check bool) "names the offender" true (contains ~needle:"tabel1" m);
  Alcotest.(check bool)
    "lists the vocabulary" true
    (contains ~needle:"valid sections" m && contains ~needle:"paper" m)

let test_unknown_env_section () =
  (* The regression this parser exists for: a typo in APPLE_BENCH_ONLY
     used to be silently ignored, running nothing at all. *)
  let m = err (parse ~argv:[] ~only:(Some "paper,mirco")) in
  Alcotest.(check bool) "names the offender" true (contains ~needle:"mirco" m);
  Alcotest.(check bool)
    "names the env var" true
    (contains ~needle:"APPLE_BENCH_ONLY" m);
  (* Experiments are not sections: the env var selects sections only. *)
  let m' = err (parse ~argv:[] ~only:(Some "table1")) in
  Alcotest.(check bool) "experiment rejected" true (contains ~needle:"table1" m')

let test_env_normalization () =
  let t = ok (parse ~argv:[] ~only:(Some " Paper , JOBS ")) in
  Alcotest.(check bool) "case-folded" true (Args.wants t "paper");
  Alcotest.(check bool) "trimmed" true (Args.wants t "jobs");
  Alcotest.(check bool) "unlisted off" false (Args.wants t "micro")

let test_json_flag () =
  let t = ok (parse ~argv:[ "--json"; "out.json"; "paper" ] ~only:None) in
  Alcotest.(check bool) "path recorded" true
    (match t.Args.json with Some p -> String.equal p "out.json" | None -> false);
  Alcotest.(check bool) "selection kept" true (Args.wants t "paper");
  let m = err (parse ~argv:[ "--json" ] ~only:None) in
  Alcotest.(check bool) "missing operand" true (contains ~needle:"--json" m);
  let m' = err (parse ~argv:[ "--json"; "a"; "--json"; "b" ] ~only:None) in
  Alcotest.(check bool) "doubled flag" true (contains ~needle:"twice" m')

let suite =
  [
    Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "positional selection" `Quick test_positional_selection;
    Alcotest.test_case "positional wins over env" `Quick
      test_positional_wins_over_env;
    Alcotest.test_case "unknown positional errors" `Quick test_unknown_positional;
    Alcotest.test_case "unknown APPLE_BENCH_ONLY errors" `Quick
      test_unknown_env_section;
    Alcotest.test_case "env normalization" `Quick test_env_normalization;
    Alcotest.test_case "--json" `Quick test_json_flag;
  ]
