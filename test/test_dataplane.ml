module Tag = Apple_dataplane.Tag
module Rule = Apple_dataplane.Rule
module Tcam = Apple_dataplane.Tcam
module Walk = Apple_dataplane.Walk
module Pfx = Apple_classifier.Prefix_split

let prefix s = Pfx.prefix_of_string s

(* Hand-built data plane: class 5 (block 10.5.0.0/24), path 0 -> 1 -> 2,
   chain of two stages processed in the APPLE host at switch 1 (instances
   11 then 12). *)
let build_simple_network () =
  let net = Tcam.network ~num_switches:3 in
  (* ingress classification at switch 0 *)
  Tcam.add_phys net.(0)
    {
      Rule.priority = 100;
      pmatch =
        { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ prefix "10.5.0.0/24" ] };
      action = Rule.Tag_and_forward { subclass = 0; host = Tag.Host 1 };
    };
  (* host match at switch 1 *)
  Tcam.add_phys net.(1)
    {
      Rule.priority = 200;
      pmatch = { Rule.m_host = `Host 1; m_subclass = `Any; m_prefixes = [] };
      action = Rule.Fwd_to_host 1;
    };
  (* pass-by everywhere *)
  Array.iter
    (fun table ->
      Tcam.add_phys table
        {
          Rule.priority = 0;
          pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
          action = Rule.Goto_next;
        })
    net;
  (* vSwitch pipeline at switch 1: net -> 11 -> 12 -> out(Fin) *)
  Tcam.add_vswitch net.(1)
    { Rule.v_port = Rule.From_network; v_key = Rule.Per_class { cls = 5; subclass = 0 }; v_action = Rule.To_instance 11 };
  Tcam.add_vswitch net.(1)
    { Rule.v_port = Rule.From_instance 11; v_key = Rule.Per_class { cls = 5; subclass = 0 }; v_action = Rule.To_instance 12 };
  Tcam.add_vswitch net.(1)
    { Rule.v_port = Rule.From_instance 12; v_key = Rule.Per_class { cls = 5; subclass = 0 }; v_action = Rule.Back_to_network Tag.Fin };
  net

let src_ip = Apple_classifier.Header.ip_of_string "10.5.0.77"

let test_walk_happy_path () =
  let net = build_simple_network () in
  match Walk.run net ~path:[ 0; 1; 2 ] ~cls:5 ~src_ip () with
  | Error e -> Alcotest.failf "walk error: %a" Walk.pp_error e
  | Ok trace ->
      Alcotest.(check (list int)) "visits routing path" [ 0; 1; 2 ] trace.Walk.visited;
      Alcotest.(check (list int)) "instances in order" [ 11; 12 ] trace.Walk.instances;
      Alcotest.(check bool) "finished" true (trace.Walk.final_host_tag = Tag.Fin);
      Alcotest.(check (option int)) "tagged" (Some 0) trace.Walk.subclass_tag

let test_walk_policy_check () =
  let net = build_simple_network () in
  let kind_of = function
    | 11 -> Apple_vnf.Nf.Firewall
    | 12 -> Apple_vnf.Nf.Ids
    | _ -> Apple_vnf.Nf.Proxy
  in
  match Walk.run net ~path:[ 0; 1; 2 ] ~cls:5 ~src_ip () with
  | Error e -> Alcotest.failf "walk error: %a" Walk.pp_error e
  | Ok trace ->
      Alcotest.(check bool) "fw->ids enforced" true
        (Walk.policy_enforced trace ~instance_kind:kind_of
           ~chain:[ Apple_vnf.Nf.Firewall; Apple_vnf.Nf.Ids ]);
      Alcotest.(check bool) "wrong chain rejected" false
        (Walk.policy_enforced trace ~instance_kind:kind_of
           ~chain:[ Apple_vnf.Nf.Ids; Apple_vnf.Nf.Firewall ]);
      Alcotest.(check bool) "interference free" true
        (Walk.interference_free trace ~path:[ 0; 1; 2 ]);
      Alcotest.(check bool) "path deviation detected" false
        (Walk.interference_free trace ~path:[ 0; 2 ])

let test_walk_unmatched_packet () =
  let net = build_simple_network () in
  (* a packet outside the class block falls through to pass-by rules and
     is never processed *)
  let other = Apple_classifier.Header.ip_of_string "11.0.0.1" in
  match Walk.run net ~path:[ 0; 1; 2 ] ~cls:5 ~src_ip:other () with
  | Error _ -> Alcotest.fail "pass-by should not error"
  | Ok trace ->
      Alcotest.(check (list int)) "no processing" [] trace.Walk.instances;
      Alcotest.(check (option int)) "untagged" None trace.Walk.subclass_tag

let test_walk_vswitch_miss () =
  let net = build_simple_network () in
  (* Remove the middle rule by rebuilding with a broken pipeline. *)
  let broken = Tcam.network ~num_switches:3 in
  Tcam.add_phys broken.(0)
    {
      Rule.priority = 100;
      pmatch =
        { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ prefix "10.5.0.0/24" ] };
      action = Rule.Tag_and_forward { subclass = 0; host = Tag.Host 1 };
    };
  Tcam.add_phys broken.(1)
    {
      Rule.priority = 200;
      pmatch = { Rule.m_host = `Host 1; m_subclass = `Any; m_prefixes = [] };
      action = Rule.Fwd_to_host 1;
    };
  Array.iter
    (fun table ->
      Tcam.add_phys table
        {
          Rule.priority = 0;
          pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
          action = Rule.Goto_next;
        })
    broken;
  ignore net;
  match Walk.run broken ~path:[ 0; 1; 2 ] ~cls:5 ~src_ip () with
  | Error (Walk.Vswitch_miss 1) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Walk.pp_error e
  | Ok _ -> Alcotest.fail "expected vswitch miss"

let test_walk_host_loop_detected () =
  let net = Tcam.network ~num_switches:1 in
  Tcam.add_phys net.(0)
    {
      Rule.priority = 100;
      pmatch =
        { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ prefix "10.5.0.0/24" ] };
      action = Rule.Tag_and_deliver { subclass = 0; host = 0 };
    };
  (* cyclic vswitch rules *)
  Tcam.add_vswitch net.(0)
    { Rule.v_port = Rule.From_network; v_key = Rule.Per_class { cls = 5; subclass = 0 }; v_action = Rule.To_instance 1 };
  Tcam.add_vswitch net.(0)
    { Rule.v_port = Rule.From_instance 1; v_key = Rule.Per_class { cls = 5; subclass = 0 }; v_action = Rule.To_instance 1 };
  match Walk.run net ~path:[ 0 ] ~cls:5 ~src_ip () with
  | Error (Walk.Host_loop 0) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Walk.pp_error e
  | Ok _ -> Alcotest.fail "expected loop detection"

let test_tcam_priority_order () =
  let table = Tcam.create ~switch:0 in
  Tcam.add_phys table
    {
      Rule.priority = 0;
      pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
      action = Rule.Goto_next;
    };
  Tcam.add_phys table
    {
      Rule.priority = 100;
      pmatch = { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ prefix "10.5.0.0/24" ] };
      action = Rule.Tag_and_forward { subclass = 3; host = Tag.Fin };
    };
  let tags = Tag.fresh () in
  match Tcam.lookup_phys table tags ~src_ip with
  | Some (Rule.Tag_and_forward { subclass; _ }) ->
      Alcotest.(check int) "high priority wins" 3 subclass
  | _ -> Alcotest.fail "expected classification match"

let test_tcam_entry_accounting () =
  let r prefixes =
    {
      Rule.priority = 1;
      pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = prefixes };
      action = Rule.Goto_next;
    }
  in
  Alcotest.(check int) "wildcard costs 1" 1 (Rule.tcam_entries (r []));
  Alcotest.(check int) "3 prefixes cost 3" 3
    (Rule.tcam_entries (r [ prefix "10.0.0.0/25"; prefix "10.0.0.128/26"; prefix "10.0.0.192/26" ]));
  let table = Tcam.create ~switch:0 in
  Tcam.add_phys table (r []);
  Tcam.add_phys table (r [ prefix "10.0.0.0/25"; prefix "10.0.0.128/25" ]);
  Alcotest.(check int) "table total" 3 (Tcam.tcam_entries table);
  Alcotest.(check int) "cross product" 15
    (Tcam.tcam_entries_crossproduct table ~other_table:5)

let test_tag_defaults () =
  let t = Tag.fresh () in
  Alcotest.(check bool) "empty host" true (t.Tag.host = Tag.Empty);
  Alcotest.(check bool) "no subclass" true (t.Tag.subclass = None);
  Alcotest.(check int) "12-bit subclass space" 4096 Tag.max_subclasses

let test_network_totals () =
  let net = build_simple_network () in
  Alcotest.(check int) "vswitch rules" 3 (Tcam.total_vswitch net);
  Alcotest.(check bool) "tcam entries counted" true (Tcam.total_tcam net >= 5)

(* ---- compiled-table lifecycle (stale-compile hazard) -------------- *)

module Compiled = Apple_dataplane.Compiled

let with_compiled f =
  let saved = Compiled.mode () in
  Compiled.set_mode Compiled.Compiled;
  Fun.protect ~finally:(fun () -> Compiled.set_mode saved) f

(* Mutating a table through retain_phys after its first compiled lookup
   must invalidate the compiled structure: the second lookup has to see
   the shrunken table (and be a fresh compile, not a stale cache hit). *)
let test_compiled_invalidated_by_retain_phys () =
  with_compiled @@ fun () ->
  let table = Tcam.create ~switch:0 in
  Tcam.add_phys table
    {
      Rule.priority = 100;
      pmatch = { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ prefix "10.5.0.0/24" ] };
      action = Rule.Tag_and_forward { subclass = 7; host = Tag.Fin };
    };
  Tcam.add_phys table
    {
      Rule.priority = 0;
      pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
      action = Rule.Goto_next;
    };
  let tags = Tag.fresh () in
  Compiled.reset_stats ();
  (match Compiled.lookup_phys_entry table tags ~src_ip with
  | Some (0, Rule.Tag_and_forward { subclass = 7; _ }) -> ()
  | _ -> Alcotest.fail "expected the classification rule (uid 0) to match");
  let compiles_after_first, _ = Compiled.stats () in
  Alcotest.(check int) "first lookup compiled the table" 1 compiles_after_first;
  (* Second lookup from the warm cache: no recompile. *)
  ignore (Compiled.lookup_phys_entry table tags ~src_ip);
  let compiles_warm, _ = Compiled.stats () in
  Alcotest.(check int) "warm lookup reuses the compile" 1 compiles_warm;
  (* TCAM loss: drop the classification rule (uid 0), keep the pass-by. *)
  let lost = Tcam.retain_phys table ~keep:(fun uid -> uid <> 0) in
  Alcotest.(check int) "one rule lost" 1 lost;
  (match Compiled.lookup_phys_entry table tags ~src_ip with
  | Some (1, Rule.Goto_next) -> ()
  | Some (uid, _) -> Alcotest.failf "stale compile: matched uid %d" uid
  | None -> Alcotest.fail "expected the surviving pass-by rule");
  let compiles_after_mutation, _ = Compiled.stats () in
  Alcotest.(check int) "mutation forced a recompile" 2 compiles_after_mutation

(* set_phys must equally invalidate (fresh uids, fresh structure). *)
let test_compiled_invalidated_by_set_phys () =
  with_compiled @@ fun () ->
  let table = Tcam.create ~switch:3 in
  Tcam.add_phys table
    {
      Rule.priority = 0;
      pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
      action = Rule.Goto_next;
    };
  let tags = Tag.fresh () in
  (match Compiled.lookup_phys_entry table tags ~src_ip with
  | Some (0, Rule.Goto_next) -> ()
  | _ -> Alcotest.fail "expected pass-by");
  Tcam.set_phys table
    [
      {
        Rule.priority = 50;
        pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
        action = Rule.Fwd_to_host 3;
      };
    ];
  match Compiled.lookup_phys_entry table tags ~src_ip with
  | Some (1, Rule.Fwd_to_host 3) -> ()
  | _ -> Alcotest.fail "stale compile survived set_phys"

(* ---- host_matches / crossproduct edges ---------------------------- *)

let tags_with host =
  let t = Tag.fresh () in
  t.Tag.host <- host;
  t

let test_host_matches_edges () =
  (* `Any admits every tag value *)
  List.iter
    (fun h -> Alcotest.(check bool) "any admits" true (Tcam.host_matches `Any (tags_with h)))
    [ Tag.Empty; Tag.Fin; Tag.Host 0; Tag.Host 41 ];
  (* `Empty admits exactly the empty tag *)
  Alcotest.(check bool) "empty vs empty" true (Tcam.host_matches `Empty (tags_with Tag.Empty));
  Alcotest.(check bool) "empty vs fin" false (Tcam.host_matches `Empty (tags_with Tag.Fin));
  Alcotest.(check bool) "empty vs host" false (Tcam.host_matches `Empty (tags_with (Tag.Host 0)));
  (* `Fin admits exactly the fin tag *)
  Alcotest.(check bool) "fin vs fin" true (Tcam.host_matches `Fin (tags_with Tag.Fin));
  Alcotest.(check bool) "fin vs empty" false (Tcam.host_matches `Fin (tags_with Tag.Empty));
  Alcotest.(check bool) "fin vs host" false (Tcam.host_matches `Fin (tags_with (Tag.Host 2)));
  (* `Host h admits exactly host h *)
  Alcotest.(check bool) "host vs same" true (Tcam.host_matches (`Host 2) (tags_with (Tag.Host 2)));
  Alcotest.(check bool) "host vs other" false (Tcam.host_matches (`Host 2) (tags_with (Tag.Host 3)));
  Alcotest.(check bool) "host vs empty" false (Tcam.host_matches (`Host 2) (tags_with Tag.Empty));
  Alcotest.(check bool) "host vs fin" false (Tcam.host_matches (`Host 2) (tags_with Tag.Fin))

let test_crossproduct_edges () =
  let empty = Tcam.create ~switch:0 in
  Alcotest.(check int) "empty table, empty next" 0
    (Tcam.tcam_entries_crossproduct empty ~other_table:0);
  Alcotest.(check int) "empty table, big next" 0
    (Tcam.tcam_entries_crossproduct empty ~other_table:1000);
  let table = Tcam.create ~switch:0 in
  Tcam.add_phys table
    {
      Rule.priority = 1;
      pmatch =
        { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [ prefix "10.0.0.0/25"; prefix "10.0.0.128/25" ] };
      action = Rule.Goto_next;
    };
  (* other_table = 0 clamps to 1: a missing next table costs no product *)
  Alcotest.(check int) "next-table floor is 1" 2
    (Tcam.tcam_entries_crossproduct table ~other_table:0);
  Alcotest.(check int) "product with 7-rule next" 14
    (Tcam.tcam_entries_crossproduct table ~other_table:7)

(* Colliding priorities: add_phys prepends the new entry before the
   stable re-sort, so within a priority band the most recently installed
   rule sorts (and matches) first.  The test pins that tie-break — for
   phys_entries, for lookups, and for the compiled engine, which must
   inherit it exactly. *)
let test_colliding_priorities_stable () =
  let build () =
    let table = Tcam.create ~switch:0 in
    (* uid 0 and uid 1 both at priority 10 and both matching: uid 1 wins *)
    Tcam.add_phys table
      {
        Rule.priority = 10;
        pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
        action = Rule.Fwd_to_host 0;
      };
    Tcam.add_phys table
      {
        Rule.priority = 10;
        pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
        action = Rule.Fwd_to_host 1;
      };
    (* a later, higher-priority band still lands on top *)
    Tcam.add_phys table
      {
        Rule.priority = 20;
        pmatch = { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ prefix "10.5.0.0/24" ] };
        action = Rule.Goto_next;
      };
    table
  in
  let table = build () in
  Alcotest.(check (list int)) "descending priority, newest first in a band"
    [ 2; 1; 0 ]
    (List.map fst (Tcam.phys_entries table));
  let miss = Apple_classifier.Header.ip_of_string "11.0.0.1" in
  (match Tcam.lookup_phys_entry table (Tag.fresh ()) ~src_ip:miss with
  | Some (1, Rule.Fwd_to_host 1) -> ()
  | _ -> Alcotest.fail "last-installed rule must win the tie");
  match
    with_compiled (fun () ->
        Compiled.lookup_phys_entry (build ()) (Tag.fresh ()) ~src_ip:miss)
  with
  | Some (1, Rule.Fwd_to_host 1) -> ()
  | _ -> Alcotest.fail "compiled engine broke the stable tie-break"

let suite =
  [
    Alcotest.test_case "walk happy path" `Quick test_walk_happy_path;
    Alcotest.test_case "walk policy check" `Quick test_walk_policy_check;
    Alcotest.test_case "walk unmatched" `Quick test_walk_unmatched_packet;
    Alcotest.test_case "walk vswitch miss" `Quick test_walk_vswitch_miss;
    Alcotest.test_case "walk loop detection" `Quick test_walk_host_loop_detected;
    Alcotest.test_case "tcam priority" `Quick test_tcam_priority_order;
    Alcotest.test_case "tcam accounting" `Quick test_tcam_entry_accounting;
    Alcotest.test_case "tag defaults" `Quick test_tag_defaults;
    Alcotest.test_case "network totals" `Quick test_network_totals;
    Alcotest.test_case "compiled invalidated by retain_phys" `Quick
      test_compiled_invalidated_by_retain_phys;
    Alcotest.test_case "compiled invalidated by set_phys" `Quick
      test_compiled_invalidated_by_set_phys;
    Alcotest.test_case "host_matches edges" `Quick test_host_matches_edges;
    Alcotest.test_case "crossproduct edges" `Quick test_crossproduct_edges;
    Alcotest.test_case "colliding priorities stable" `Quick
      test_colliding_priorities_stable;
  ]
