(* Differential harness: the compiled dataplane (Apple_dataplane.Compiled)
   against the interpreted reference (Tcam/Walk), over random tables, tag
   states, source addresses and failure masks.  Equality is demanded on
   traces, error codes, per-rule counter credits and flight-recorder
   events — the compiled engine must be observationally indistinguishable,
   not just produce the same routes. *)

module Tag = Apple_dataplane.Tag
module Rule = Apple_dataplane.Rule
module Tcam = Apple_dataplane.Tcam
module Walk = Apple_dataplane.Walk
module Compiled = Apple_dataplane.Compiled
module Failmask = Apple_dataplane.Failmask
module Counters = Apple_obs.Counters
module Flight = Apple_obs.Flight
module Rng = Apple_prelude.Rng
module Pfx = Apple_classifier.Prefix_split

let with_mode mode f =
  let saved = Compiled.mode () in
  Compiled.set_mode mode;
  Fun.protect ~finally:(fun () -> Compiled.set_mode saved) f

(* ---------------- random dataplanes -------------------------------- *)

let gen_prefix rng =
  let len = 4 + Rng.int rng 21 (* /4 .. /24 *) in
  let addr =
    (Rng.int rng 256 lsl 24)
    lor (Rng.int rng 256 lsl 16)
    lor (Rng.int rng 256 lsl 8)
    lor Rng.int rng 256
  in
  let addr = addr land lnot ((1 lsl (32 - len)) - 1) in
  { Pfx.addr; len }

let gen_host_field rng ~n =
  match Rng.int rng 3 with
  | 0 -> Tag.Empty
  | 1 -> Tag.Fin
  | _ -> Tag.Host (Rng.int rng n)

let gen_host_pattern rng ~n =
  match Rng.int rng 4 with
  | 0 -> `Any
  | 1 -> `Empty
  | 2 -> `Fin
  | _ -> `Host (Rng.int rng n)

let gen_subclass_pattern rng =
  if Rng.int rng 2 = 0 then `Any else `Subclass (Rng.int rng 6)

let gen_action rng ~n =
  match Rng.int rng 5 with
  | 0 -> Rule.Fwd_to_host (Rng.int rng n)
  | 1 -> Rule.Tag_and_deliver { subclass = Rng.int rng 6; host = Rng.int rng n }
  | 2 ->
      Rule.Tag_and_forward
        { subclass = Rng.int rng 6; host = gen_host_field rng ~n }
  | 3 -> Rule.Set_host_and_forward (gen_host_field rng ~n)
  | _ -> Rule.Goto_next

let gen_phys_rule rng ~n =
  let n_prefixes = Rng.int rng 4 in
  {
    (* Priorities drawn from a tiny range so collisions (and the stable
       sort's install-order tie-break) are the common case, not the
       exception. *)
    Rule.priority = Rng.int rng 4;
    pmatch =
      {
        Rule.m_host = gen_host_pattern rng ~n;
        m_subclass = gen_subclass_pattern rng;
        m_prefixes = List.init n_prefixes (fun _ -> gen_prefix rng);
      };
    action = gen_action rng ~n;
  }

let gen_vswitch_rule rng ~n =
  let port =
    match Rng.int rng 3 with
    | 0 -> Rule.From_network
    | 1 -> Rule.From_production_vm
    | _ -> Rule.From_instance (Rng.int rng 5)
  in
  let key =
    if Rng.int rng 2 = 0 then
      Rule.Per_class { cls = Rng.int rng 4; subclass = Rng.int rng 6 }
    else Rule.Global (Rng.int rng 6)
  in
  let action =
    if Rng.int rng 3 = 0 then
      Rule.Back_to_network (gen_host_field rng ~n)
    else Rule.To_instance (Rng.int rng 5)
  in
  { Rule.v_port = port; v_key = key; v_action = action }

let gen_network rng =
  let n = 2 + Rng.int rng 3 in
  let net = Tcam.network ~num_switches:n in
  Array.iter
    (fun table ->
      for _ = 1 to Rng.int rng 9 do
        Tcam.add_phys table (gen_phys_rule rng ~n)
      done;
      for _ = 1 to Rng.int rng 7 do
        Tcam.add_vswitch table (gen_vswitch_rule rng ~n)
      done)
    net;
  (net, n)

let gen_tags rng ~n =
  let t = Tag.fresh () in
  t.Tag.host <- gen_host_field rng ~n;
  t.Tag.subclass <- (if Rng.int rng 2 = 0 then None else Some (Rng.int rng 8));
  t

(* A mask drawn to actually bite: elements of the walked path and the
   instance id range, not arbitrary ints. *)
let gen_mask rng ~n =
  let m = Failmask.create () in
  if Rng.int rng 2 = 0 then begin
    if Rng.int rng 3 = 0 then Failmask.fail_switch m (Rng.int rng n);
    if Rng.int rng 3 = 0 then
      Failmask.fail_link m (Rng.int rng n) (Rng.int rng n);
    if Rng.int rng 3 = 0 then Failmask.fail_instance m (Rng.int rng 5)
  end;
  m

let gen_ip rng =
  (Rng.int rng 256 lsl 24)
  lor (Rng.int rng 256 lsl 16)
  lor (Rng.int rng 256 lsl 8)
  lor Rng.int rng 256

(* ---------------- observation capture ------------------------------ *)

let event_tuple (e : Flight.event) = (e.Flight.kind, e.a, e.b, e.c, e.d)

(* Run [f] with counters + flight recording on, from a clean slate, and
   return (result, rule counter snapshot, flight event tuples). *)
let observed f =
  Counters.reset ();
  Flight.clear ();
  Counters.set_enabled true;
  let r =
    Fun.protect ~finally:(fun () -> Counters.set_enabled false) f
  in
  (r, Counters.rule_snapshot (), List.map event_tuple (Flight.events ()))

let pp_walk_result = function
  | Ok (t : Walk.trace) ->
      Printf.sprintf "Ok visited=%s instances=%s rules=%s"
        (String.concat "," (List.map string_of_int t.Walk.visited))
        (String.concat "," (List.map string_of_int t.Walk.instances))
        (String.concat ","
           (List.map (fun (s, u) -> Printf.sprintf "%d:%d" s u) t.Walk.rule_path))
  | Error e -> Format.asprintf "Error %a (code %d)" Walk.pp_error e (Walk.error_code e)

(* ---------------- properties --------------------------------------- *)

(* Single-table physical lookup, all contexts. *)
let prop_phys_lookup =
  QCheck.Test.make ~name:"compiled ≡ interp: phys lookup" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let net, n = gen_network rng in
      let table = net.(Rng.int rng n) in
      let ok = ref true in
      for _ = 1 to 16 do
        let tags = gen_tags rng ~n in
        let src_ip = gen_ip rng in
        let reference, ref_counts, _ =
          observed (fun () -> Tcam.lookup_phys_entry table tags ~src_ip)
        in
        let fast, fast_counts, _ =
          observed (fun () ->
              with_mode Compiled.Compiled (fun () ->
                  Compiled.lookup_phys_entry table tags ~src_ip))
        in
        if not (reference = fast && ref_counts = fast_counts) then ok := false
      done;
      !ok)

(* Single-table vSwitch lookup: both key spaces, rewritten headers. *)
let prop_vswitch_lookup =
  QCheck.Test.make ~name:"compiled ≡ interp: vswitch lookup" ~count:150
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let net, n = gen_network rng in
      let table = net.(Rng.int rng n) in
      let ok = ref true in
      for _ = 1 to 16 do
        let port =
          match Rng.int rng 3 with
          | 0 -> Rule.From_network
          | 1 -> Rule.From_production_vm
          | _ -> Rule.From_instance (Rng.int rng 5)
        in
        let cls = if Rng.int rng 3 = 0 then None else Some (Rng.int rng 4) in
        let subclass = Rng.int rng 6 in
        let reference = Tcam.lookup_vswitch table port ~cls ~subclass in
        let fast =
          with_mode Compiled.Compiled (fun () ->
              Compiled.lookup_vswitch table port ~cls ~subclass)
        in
        if not (reference = fast) then ok := false
      done;
      !ok)

(* Whole walks under failure masks: traces, error codes, counters and
   flight events must agree.  The generator mixes healthy and faulted
   masks, so blackhole variants (Link_dead/Switch_dead/Instance_dead)
   appear alongside table-shaped errors. *)
let walk_both ~seed =
  let rng = Rng.create seed in
  let net, n = gen_network rng in
  let path = List.init (1 + Rng.int rng n) (fun _ -> Rng.int rng n) in
  let cls = Rng.int rng 4 in
  let src_ip = gen_ip rng in
  let start_in_host = Rng.int rng 4 = 0 in
  let mask = gen_mask rng ~n in
  let go mode =
    observed (fun () ->
        with_mode mode (fun () ->
            Walk.run net ~path ~cls ~src_ip ~start_in_host ~mask ()))
  in
  let reference = go Compiled.Interp in
  let fast = go Compiled.Compiled in
  (reference, fast)

let prop_walk =
  QCheck.Test.make ~name:"compiled ≡ interp: walks under failmasks" ~count:150
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let (r1, c1, e1), (r2, c2, e2) = walk_both ~seed in
      if r1 = r2 && c1 = c2 && e1 = e2 then true
      else
        QCheck.Test.fail_reportf "diverged on seed %d:\n  interp:   %s\n  compiled: %s"
          seed (pp_walk_result r1) (pp_walk_result r2))

(* Batching must not change observable behaviour in either mode. *)
let prop_batch =
  QCheck.Test.make ~name:"run_batch ≡ sequential runs (both modes)" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let net, n = gen_network rng in
      let mask = gen_mask rng ~n in
      let requests =
        Array.init
          (1 + Rng.int rng 6)
          (fun i ->
            {
              Walk.rq_path = List.init (1 + Rng.int rng n) (fun _ -> Rng.int rng n);
              rq_cls = Rng.int rng 4;
              rq_src_ip = gen_ip rng;
              rq_start_in_host = Rng.int rng 4 = 0;
              rq_flow = i;
            })
      in
      let check mode =
        let batched, bc, be =
          observed (fun () ->
              with_mode mode (fun () -> Walk.run_batch net ~requests ~mask ()))
        in
        let sequential, sc, se =
          observed (fun () ->
              with_mode mode (fun () ->
                  Array.map
                    (fun rq ->
                      Walk.run net ~path:rq.Walk.rq_path ~cls:rq.Walk.rq_cls
                        ~src_ip:rq.Walk.rq_src_ip
                        ~start_in_host:rq.Walk.rq_start_in_host
                        ~flow:rq.Walk.rq_flow ~mask ())
                    requests))
        in
        batched = sequential && bc = sc && be = se
      in
      check Compiled.Interp && check Compiled.Compiled)

(* ---------------- the seven error variants, deterministically ------- *)

let prefix s = Pfx.prefix_of_string s
let ip s = Apple_classifier.Header.ip_of_string s

let classify ~to_host =
  {
    Rule.priority = 100;
    pmatch =
      { Rule.m_host = `Empty; m_subclass = `Any; m_prefixes = [ prefix "10.0.0.0/8" ] };
    action = to_host;
  }

(* One network per error variant, each walked under both engines; the
   error (not just its code) must match. *)
let error_scenarios () =
  let src_ip = ip "10.1.2.3" in
  let scenarios = ref [] in
  let add name net ?mask path expect_code =
    scenarios := (name, net, mask, path, expect_code) :: !scenarios
  in
  (* 1: no matching rule — empty table *)
  add "no_matching_rule" (Tcam.network ~num_switches:2) [ 0; 1 ] 1;
  (* 2: vswitch miss — delivered to a host with no vswitch pipeline *)
  let net2 = Tcam.network ~num_switches:1 in
  Tcam.add_phys net2.(0)
    (classify ~to_host:(Rule.Tag_and_deliver { subclass = 0; host = 0 }));
  add "vswitch_miss" net2 [ 0 ] 2;
  (* 3: host loop — a vswitch cycle *)
  let net3 = Tcam.network ~num_switches:1 in
  Tcam.add_phys net3.(0)
    (classify ~to_host:(Rule.Tag_and_deliver { subclass = 0; host = 0 }));
  Tcam.add_vswitch net3.(0)
    {
      Rule.v_port = Rule.From_network;
      v_key = Rule.Global 0;
      v_action = Rule.To_instance 1;
    };
  Tcam.add_vswitch net3.(0)
    {
      Rule.v_port = Rule.From_instance 1;
      v_key = Rule.Global 0;
      v_action = Rule.To_instance 1;
    };
  add "host_loop" net3 [ 0 ] 3;
  (* 4: wrong host — deliver names a non-local host *)
  let net4 = Tcam.network ~num_switches:2 in
  Tcam.add_phys net4.(0)
    (classify ~to_host:(Rule.Tag_and_deliver { subclass = 0; host = 1 }));
  add "wrong_host" net4 [ 0; 1 ] 4;
  (* 5/6/7: blackholes via the failmask *)
  let healthy () =
    let net = Tcam.network ~num_switches:2 in
    Tcam.add_phys net.(0)
      (classify ~to_host:(Rule.Tag_and_deliver { subclass = 0; host = 0 }));
    Array.iter
      (fun table ->
        Tcam.add_phys table
          {
            Rule.priority = 0;
            pmatch = { Rule.m_host = `Any; m_subclass = `Any; m_prefixes = [] };
            action = Rule.Goto_next;
          })
      net;
    Tcam.add_vswitch net.(0)
      {
        Rule.v_port = Rule.From_network;
        v_key = Rule.Global 0;
        v_action = Rule.To_instance 7;
      };
    Tcam.add_vswitch net.(0)
      {
        Rule.v_port = Rule.From_instance 7;
        v_key = Rule.Global 0;
        v_action = Rule.Back_to_network Tag.Fin;
      };
    net
  in
  let m5 = Failmask.create () in
  Failmask.fail_link m5 0 1;
  add "link_dead" (healthy ()) ~mask:m5 [ 0; 1 ] 5;
  let m6 = Failmask.create () in
  Failmask.fail_switch m6 1;
  add "switch_dead" (healthy ()) ~mask:m6 [ 0; 1 ] 6;
  let m7 = Failmask.create () in
  Failmask.fail_instance m7 7;
  add "instance_dead" (healthy ()) ~mask:m7 [ 0; 1 ] 7;
  (List.rev !scenarios, src_ip)

let test_all_error_variants () =
  let scenarios, src_ip = error_scenarios () in
  List.iter
    (fun (name, net, mask, path, expect_code) ->
      let go mode =
        observed (fun () ->
            with_mode mode (fun () -> Walk.run net ~path ~cls:0 ~src_ip ?mask ()))
      in
      let (r1, c1, e1) = go Compiled.Interp in
      let (r2, c2, e2) = go Compiled.Compiled in
      (match r1 with
      | Error e ->
          Alcotest.(check int)
            (name ^ ": interp raises the expected variant")
            expect_code (Walk.error_code e)
      | Ok _ -> Alcotest.failf "%s: interp unexpectedly succeeded" name);
      Alcotest.(check bool) (name ^ ": same result") true (r1 = r2);
      Alcotest.(check bool) (name ^ ": same counters") true (c1 = c2);
      Alcotest.(check bool) (name ^ ": same flight events") true (e1 = e2))
    scenarios

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_phys_lookup; prop_vswitch_lookup; prop_walk; prop_batch ]
  @ [ Alcotest.test_case "all seven error variants diff-equal" `Quick
        test_all_error_variants ]
