(* The domain pool's determinism contract, end to end: pool-level unit
   tests, then the guarantee the engines advertise — placements, rule
   tables and online admissions are byte-identical for every jobs
   value. *)

module Pool = Apple_parallel.Pool
module C = Apple_core
module OE = C.Optimization_engine
module HE = C.Heuristic_engine
module OL = C.Online_engine
module ES = C.Engine_select
module Nf = Apple_vnf.Nf
module B = Apple_topology.Builders

(* --- pool unit tests ------------------------------------------------ *)

let test_pool_map_matches_sequential () =
  let n = 10_000 in
  let f i = (i * 7919) mod 104729 in
  let expected = Array.init n f in
  let pool = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check (array int)) "10k map" expected (Pool.map_range pool ~n ~f);
      (* Same pool again: posting a second job must work. *)
      Alcotest.(check (array int)) "reused pool" expected
        (Pool.map_range pool ~n ~f))

let test_pool_jobs1_inline () =
  let pool = Pool.create ~jobs:1 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check (array int)) "jobs=1" [| 0; 2; 4 |]
        (Pool.map pool (fun x -> 2 * x) [| 0; 1; 2 |]))

exception Boom of int

let test_pool_exception_propagates () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let raised =
        try
          ignore (Pool.map_range pool ~n:1000 ~f:(fun i ->
              if i = 637 then raise (Boom i) else i));
          false
        with Boom _ -> true
      in
      Alcotest.(check bool) "exception surfaced" true raised;
      (* The failed job must have drained completely: the pool stays
         usable. *)
      let expected = Array.init 1000 (fun i -> i + 1) in
      Alcotest.(check (array int)) "pool usable after error" expected
        (Pool.map_range pool ~n:1000 ~f:(fun i -> i + 1)))

let test_pool_shutdown_degrades () =
  let pool = Pool.create ~jobs:4 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.(check (array int)) "sequential after shutdown" [| 1; 2; 3 |]
    (Pool.map pool (fun x -> x + 1) [| 0; 1; 2 |])

(* --- engine determinism across jobs --------------------------------- *)

let placements_equal (a : OE.placement) (b : OE.placement) =
  a.OE.counts = b.OE.counts && a.OE.distribution = b.OE.distribution

let test_per_class_jobs_determinism () =
  let s = Helpers.small_scenario ~max_classes:60 () in
  let solve jobs = OE.solve ~method_:OE.Per_class ~jobs s in
  let p1 = solve 1 and p2 = solve 2 and p4 = solve 4 in
  Alcotest.(check bool) "jobs=1 = jobs=2" true (placements_equal p1 p2);
  Alcotest.(check bool) "jobs=1 = jobs=4" true (placements_equal p1 p4);
  match OE.check_distribution s p1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let rule_tables network =
  Array.map Apple_dataplane.Tcam.phys_rules network

let test_per_class_rules_identical_all_topologies () =
  List.iter
    (fun named ->
      let s = Helpers.small_scenario ~named ~max_classes:40 () in
      let p1 = OE.solve ~method_:OE.Per_class ~jobs:1 s in
      let p4 = OE.solve ~method_:OE.Per_class ~jobs:4 s in
      let label = s.C.Types.topo.B.label in
      Alcotest.(check bool) (label ^ ": placements identical") true
        (placements_equal p1 p4);
      (* And all the way down: the generated switch tables coincide. *)
      let built jobs_placement =
        let asg = C.Subclass.assign s jobs_placement in
        (C.Rule_generator.build s asg).C.Rule_generator.network
      in
      Alcotest.(check bool) (label ^ ": rule tables identical") true
        (rule_tables (built p1) = rule_tables (built p4)))
    [ B.geant (); B.univ1 () ]

let test_metrics_do_not_change_engine_output () =
  (* Telemetry is a side channel: enabling it must leave the engine's
     output untouched, at every jobs value.  Baseline with metrics off,
     then identical solves with metrics on at jobs 1 and 4. *)
  let module T = Apple_telemetry.Telemetry in
  let s = Helpers.small_scenario ~max_classes:60 () in
  let solve jobs = OE.solve ~method_:OE.Per_class ~jobs s in
  let baseline = solve 4 in
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    (fun () ->
      T.set_enabled true;
      let m1 = solve 1 and m4 = solve 4 in
      Alcotest.(check bool) "metrics on, jobs=1 = baseline" true
        (placements_equal baseline m1);
      Alcotest.(check bool) "metrics on, jobs=4 = baseline" true
        (placements_equal baseline m4);
      (* And the instrumentation actually observed the solves. *)
      Alcotest.(check bool) "lp solves counted" true
        (T.Counter.value (T.Counter.create "apple.lp.solves") > 0))

let test_heuristic_jobs_determinism () =
  let s = Helpers.small_scenario ~max_classes:60 () in
  let p1 = HE.solve ~jobs:1 s in
  let p4 = HE.solve ~jobs:4 s in
  Alcotest.(check bool) "greedy jobs=1 = jobs=4" true (placements_equal p1 p4)

(* --- online admit_batch --------------------------------------------- *)

let online_state () =
  let s = Helpers.small_scenario ~max_classes:20 () in
  let p = ES.solve_best s in
  let asg = C.Subclass.assign s p in
  let state = C.Netstate.of_assignment s asg in
  C.Netstate.recompute_loads state;
  state

let arrivals (state : C.Netstate.t) =
  let s = state.C.Netstate.scenario in
  let g = s.C.Types.topo.B.graph in
  let base = Array.length s.C.Types.classes in
  let n = Apple_topology.Graph.num_nodes g in
  Array.init 8 (fun i ->
      let src = i mod (n - 1) and dst = n - 1 in
      let path =
        match Apple_topology.Graph.shortest_path g src dst with
        | Some p -> Array.of_list p
        | None -> Alcotest.fail "disconnected topology"
      in
      {
        C.Types.id = base + i;
        src;
        dst;
        path;
        chain =
          Array.of_list
            (Nf.chain_of_string
               (if i mod 2 = 0 then "firewall -> ids" else "firewall"));
        src_block = C.Scenario.src_block_of_class_id (base + i);
        rate = 120.0 +. (30.0 *. float_of_int i);
      })

let outcome_sig (o : OL.outcome) =
  ( o.OL.accepted,
    List.map Apple_vnf.Instance.id o.OL.new_instances,
    match o.OL.subclass with
    | None -> None
    | Some p -> Some (p.C.Netstate.hops, p.C.Netstate.p_class) )

let test_admit_batch_jobs_determinism () =
  (* Two identical states, batch-admitted with different jobs: every
     outcome — acceptance, spawned instance ids, pinned hops — must
     coincide, as must the resulting state sizes. *)
  let s1 = online_state () and s2 = online_state () in
  let o1 = OL.admit_batch ~jobs:1 s1 (arrivals s1) in
  let o4 = OL.admit_batch ~jobs:4 s2 (arrivals s2) in
  Alcotest.(check int) "same batch size" (Array.length o1) (Array.length o4);
  Array.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "outcome %d identical" i)
        true
        (outcome_sig a = outcome_sig o4.(i)))
    o1;
  Alcotest.(check int) "same instance total" (OL.total_instances s1)
    (OL.total_instances s2);
  Alcotest.(check bool) "weights valid" true (C.Netstate.weights_valid s1);
  List.iter
    (fun inst ->
      Alcotest.(check bool) "within capacity" true
        (Apple_vnf.Instance.offered inst
        <= (Apple_vnf.Instance.spec inst).Nf.capacity_mbps +. 1e-6))
    (C.Resource_orchestrator.instances s1.C.Netstate.orchestrator)

let test_admit_batch_singletons_match_admit () =
  (* A full batch may keep a stale-but-still-applicable plan where a live
     sequential admit would replan, so batch-of-n is NOT promised to equal
     n sequential admits.  Batch-of-1 is: each plan is made against the
     live state, exactly like admit. *)
  let s1 = online_state () and s2 = online_state () in
  Array.iteri
    (fun i cls ->
      let b = (OL.admit_batch ~jobs:4 s1 [| cls |]).(0) in
      let q = OL.admit s2 cls in
      Alcotest.(check bool)
        (Printf.sprintf "singleton batch %d = admit" i)
        true
        (outcome_sig b = outcome_sig q))
    (arrivals s1);
  Alcotest.(check int) "states converged" (OL.total_instances s1)
    (OL.total_instances s2)

(* --- packet walks over a parallel-produced placement ----------------- *)

let test_walk_geant_per_class_placement () =
  (* Solve GEANT with the parallel engine, realize sub-classes and rules,
     then packet-walk every sub-class: the chain must be enforced in
     order and the forwarding path must be exactly the routing path. *)
  let s = Helpers.small_scenario ~named:(B.geant ()) ~max_classes:40 () in
  let p = OE.solve ~method_:OE.Per_class ~jobs:4 s in
  (match OE.check_distribution s p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let asg = C.Subclass.assign s p in
  let built = C.Rule_generator.build s asg in
  let inst_kind = Hashtbl.create 64 in
  List.iter
    (fun i ->
      Hashtbl.replace inst_kind (Apple_vnf.Instance.id i)
        (Apple_vnf.Instance.kind i))
    asg.C.Subclass.instances;
  let walked = ref 0 in
  Array.iter
    (fun c ->
      let subs = Helpers.subclasses_of asg c.C.Types.id in
      let prefixes =
        C.Rule_generator.subclass_prefixes c subs
          ~depth:built.C.Rule_generator.split_depth
      in
      List.iteri
        (fun idx _ ->
          match prefixes.(idx) with
          | [] -> ()
          | pfx :: _ -> (
              incr walked;
              let path = Array.to_list c.C.Types.path in
              match
                Apple_dataplane.Walk.run built.C.Rule_generator.network ~path
                  ~cls:c.C.Types.id ~src_ip:pfx.C.Types.Prefix.addr ()
              with
              | Error e ->
                  Alcotest.fail
                    (Format.asprintf "class %d: %a" c.C.Types.id
                       Apple_dataplane.Walk.pp_error e)
              | Ok trace ->
                  Alcotest.(check bool)
                    (Printf.sprintf "class %d policy enforced" c.C.Types.id)
                    true
                    (Apple_dataplane.Walk.policy_enforced trace
                       ~instance_kind:(Hashtbl.find inst_kind)
                       ~chain:(Array.to_list c.C.Types.chain));
                  Alcotest.(check bool)
                    (Printf.sprintf "class %d path unchanged" c.C.Types.id)
                    true
                    (Apple_dataplane.Walk.interference_free trace ~path)))
        subs)
    s.C.Types.classes;
  Alcotest.(check bool) "walked at least one sub-class per class" true
    (!walked >= Array.length s.C.Types.classes)

let suite =
  [
    Alcotest.test_case "pool: 10k map = sequential" `Quick
      test_pool_map_matches_sequential;
    Alcotest.test_case "pool: jobs=1 runs inline" `Quick test_pool_jobs1_inline;
    Alcotest.test_case "pool: exceptions propagate, pool survives" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "pool: shutdown degrades to sequential" `Quick
      test_pool_shutdown_degrades;
    Alcotest.test_case "per-class placement identical for jobs 1/2/4" `Quick
      test_per_class_jobs_determinism;
    Alcotest.test_case "per-class rule tables identical (GEANT, UNIV1)" `Slow
      test_per_class_rules_identical_all_topologies;
    Alcotest.test_case "greedy identical across jobs" `Quick
      test_heuristic_jobs_determinism;
    Alcotest.test_case "metrics collection never changes engine output" `Quick
      test_metrics_do_not_change_engine_output;
    Alcotest.test_case "admit_batch identical across jobs" `Quick
      test_admit_batch_jobs_determinism;
    Alcotest.test_case "singleton admit_batch matches admit" `Quick
      test_admit_batch_singletons_match_admit;
    Alcotest.test_case "walks hold on a parallel GEANT placement" `Slow
      test_walk_geant_per_class_placement;
  ]
