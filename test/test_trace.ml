(* The causal tracer's contract: disabled-path no-ops, parent/child
   causality, ring overflow accounting, export schema, self-time
   attribution, and — the load-bearing property — byte-identical sim
   renders for any --jobs.  Every test restores the disabled default so
   the rest of the suite observes an inert tracer. *)

module Trace = Apple_trace.Trace
module C = Apple_core

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  nn = 0 || scan 0

(* Flip tracing on for the body of a test, restoring the disabled
   default and an empty ring no matter how the body exits. *)
let with_trace f =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

let sp_outer = Trace.span ~cat:"test" "test.outer"
let sp_inner = Trace.span ~cat:"test" "test.inner"

(* --- disabled path -------------------------------------------------- *)

let test_disabled_noop () =
  Trace.reset ();
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  let v = Trace.with_ sp_outer (fun () -> 42) in
  Alcotest.(check int) "body runs" 42 v;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  Alcotest.(check int) "no drops" 0 (Trace.dropped ())

(* --- causality ------------------------------------------------------ *)

let test_parent_child () =
  with_trace @@ fun () ->
  Trace.with_ sp_outer (fun () ->
      Trace.with_ sp_inner (fun () -> ());
      Trace.with_ ~cls:7 sp_inner (fun () -> ()));
  let evs = Trace.events () in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let outer =
    List.find (fun e -> e.Trace.ev_name = "test.outer") evs
  in
  let inners =
    List.filter (fun e -> e.Trace.ev_name = "test.inner") evs
  in
  Alcotest.(check int) "two inner" 2 (List.length inners);
  List.iter
    (fun e ->
      Alcotest.(check int) "same trace" outer.Trace.ev_trace e.Trace.ev_trace;
      Alcotest.(check int) "child of outer" outer.Trace.ev_id e.Trace.ev_parent)
    inners;
  (match inners with
  | [ a; b ] ->
      Alcotest.(check bool) "distinct ids" true (a.Trace.ev_id <> b.Trace.ev_id);
      Alcotest.(check int) "seq 0 then 1" 0 a.Trace.ev_seq;
      Alcotest.(check int) "seq 0 then 1" 1 b.Trace.ev_seq;
      Alcotest.(check int) "cls carried" 7 b.Trace.ev_cls
  | _ -> Alcotest.fail "expected exactly two inner events");
  (* Two roots get distinct traces. *)
  Trace.with_ sp_outer (fun () -> ());
  let roots =
    List.filter (fun e -> e.Trace.ev_name = "test.outer") (Trace.events ())
  in
  match roots with
  | [ a; b ] ->
      Alcotest.(check bool) "distinct traces" true
        (a.Trace.ev_trace <> b.Trace.ev_trace)
  | _ -> Alcotest.fail "expected exactly two root events"

(* --- ring overflow -------------------------------------------------- *)

let test_ring_overflow () =
  let saved = Trace.ring_capacity () in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.set_ring_capacity saved)
    (fun () ->
      Trace.set_ring_capacity 8;
      Trace.set_enabled true;
      for _ = 1 to 20 do
        Trace.with_ sp_outer (fun () -> ())
      done;
      Trace.set_enabled false;
      Alcotest.(check int) "ring keeps cap" 8 (List.length (Trace.events ()));
      Alcotest.(check int) "drops counted" 12 (Trace.dropped ());
      let s = Trace.render_chrome ~mode:Trace.Sim () in
      Alcotest.(check bool) "drops exported" true
        (contains s "\"dropped\":12"))

(* --- export --------------------------------------------------------- *)

let test_chrome_schema () =
  with_trace @@ fun () ->
  Trace.with_ sp_outer (fun () -> Trace.with_ sp_inner (fun () -> ()));
  let sim = Trace.render_chrome ~mode:Trace.Sim () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("sim render has " ^ needle) true
        (contains sim needle))
    [
      "\"schema\":\"apple-trace/1\"";
      "\"mode\":\"sim\"";
      "\"traceEvents\":[";
      "\"ph\":\"X\"";
      "\"cat\":\"test\"";
      (* Host-dependent fields are zeroed in sim mode. *)
      "\"tid\":0";
      "\"wall_us\":0.000";
      "\"minor_words\":0";
    ];
  let wall = Trace.render_chrome ~mode:Trace.Wall () in
  Alcotest.(check bool) "wall render tagged" true
    (contains wall "\"mode\":\"wall\"")

let test_rows_and_phases () =
  with_trace @@ fun () ->
  Trace.with_ sp_outer (fun () ->
      for _ = 1 to 3 do
        Trace.with_ sp_inner (fun () -> Sys.opaque_identity (ignore (Array.make 100 0.0)))
      done);
  let rows = Trace.rows ~mode:Trace.Wall () in
  Alcotest.(check int) "two row names" 2 (List.length rows);
  let inner = List.find (fun r -> r.Trace.r_name = "test.inner") rows in
  Alcotest.(check int) "inner count" 3 inner.Trace.r_count;
  Alcotest.(check bool) "self <= total" true
    (inner.Trace.r_self <= inner.Trace.r_total +. 1e-12);
  let phases = Trace.phases ~mode:Trace.Wall () in
  Alcotest.(check int) "one phase" 1 (List.length phases);
  let p = List.hd phases in
  Alcotest.(check string) "phase cat" "test" p.Trace.ph_cat;
  Alcotest.(check int) "phase count" 4 p.Trace.ph_count;
  let table = Trace.render_table ~mode:Trace.Wall () in
  Alcotest.(check bool) "table headed" true (contains table "APPLE profile");
  Alcotest.(check bool) "table lists span" true (contains table "test.inner")

(* --- jobs invariance ------------------------------------------------ *)

(* One gated per-class epoch over a small scenario, traced; the sim
   render zeroes every host-dependent field, so it must come out byte
   for byte the same whatever the worker count. *)
let traced_epoch_render ~seed ~jobs =
  let s = Helpers.small_scenario ~seed ~total:3000.0 ~max_classes:12 () in
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled false)
    (fun () ->
      let ctrl =
        C.Controller.create ~engine:`Per_class ~jobs
          ~gate:Apple_verify.Verify.gate s
      in
      ignore (C.Controller.run_epoch ctrl);
      Trace.render_chrome ~mode:Trace.Sim ())

let test_sim_render_jobs_invariant () =
  let a = traced_epoch_render ~seed:11 ~jobs:1 in
  let b = traced_epoch_render ~seed:11 ~jobs:4 in
  Alcotest.(check bool) "some events traced" true
    (contains a "pool.item");
  Alcotest.(check string) "jobs 1 = jobs 4" a b;
  Trace.reset ()

let prop_sim_render_jobs_invariant =
  QCheck.Test.make ~count:4 ~name:"sim render invariant under --jobs"
    QCheck.(make Gen.(int_range 1 1000))
    (fun seed ->
      let a = traced_epoch_render ~seed ~jobs:1 in
      let b = traced_epoch_render ~seed ~jobs:3 in
      Trace.reset ();
      String.equal a b)

let suite =
  [
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "parent/child causality" `Quick test_parent_child;
    Alcotest.test_case "ring overflow accounting" `Quick test_ring_overflow;
    Alcotest.test_case "chrome export schema" `Quick test_chrome_schema;
    Alcotest.test_case "rows, phases and table" `Quick test_rows_and_phases;
    Alcotest.test_case "sim render --jobs invariant" `Quick
      test_sim_render_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_sim_render_jobs_invariant;
  ]
