.PHONY: all build test bench lint check clean goldens

all: build

build:
	dune build

test:
	dune runtest --force

# Full paper-scale benchmark run (slow).
bench:
	dune exec bench/main.exe

# Refresh the differential-regression goldens (test/goldens/*.txt) from
# the current build; review the diff before committing.
goldens:
	dune exec tools/make_goldens.exe -- test/goldens

# Style gate: no polymorphic compare in lib/, no Hashtbl in
# lib/parallel, no stdout printing from libraries.
lint:
	sh tools/lint.sh

# One-stop gate: lint, compile everything, run the full test suite, then
# a scaled-down smoke of the jobs study so the parallel path is exercised
# with jobs>1 even on single-core CI boxes.
check: lint build test
	APPLE_BENCH_SCALE=0.02 APPLE_JOBS=2 APPLE_BENCH_ONLY=jobs dune exec bench/main.exe

clean:
	dune clean
