.PHONY: all build test bench lint check clean goldens soak bench-snapshots

all: build

build:
	dune build

test:
	dune runtest --force

# Full paper-scale benchmark run (slow).
bench:
	dune exec bench/main.exe

# Refresh the differential-regression goldens (test/goldens/*.txt) from
# the current build; review the diff before committing.
goldens:
	dune exec tools/make_goldens.exe -- test/goldens

# The acceptance-scale endurance run: 2000 epochs on Internet2 with the
# full fault drill, checkpointing into _soak/ (kill it and re-run with
# --resume to continue byte-identically).
soak:
	dune exec bin/apple_cli.exe -- soak -t internet2 --seed 42 --epochs 2000 \
	  --schedule examples/soak_internet2.soak --state-dir _soak

# Refresh the committed bench snapshots (BENCH_core.json at a reduced
# deterministic scale plus the fixed-size phase profile, BENCH_soak.json
# from the acceptance soak run); review the diff before committing, and
# keep EXPERIMENTS.md's schema docs in step
# (tools/check_bench_schema.sh gates that).
bench-snapshots:
	APPLE_BENCH_SCALE=0.2 dune exec bench/main.exe -- table5 fig10 fig11 fig12 \
	  dataplane profile --json BENCH_core.json
	dune exec bin/apple_cli.exe -- soak -t internet2 --seed 42 --epochs 2000 \
	  --schedule examples/soak_internet2.soak --bench-json BENCH_soak.json \
	  > /dev/null
	sh tools/check_bench_schema.sh

# Determinism & purity gate: the AST analyzer (lib/lint) parses every
# .ml/.mli under lib/ bin/ bench/ tools/ and enforces the rule catalog
# (L1..L13: polymorphic compare/hash, Hashtbl order, nondeterminism
# sources, stdout in libraries, catch-alls, Obj.magic, Marshal, ...).
# `--list-rules` prints the catalog; `--format json` emits the
# apple-lint/1 report.
lint:
	dune exec tools/apple_lint.exe

# One-stop gate: lint, compile everything, run the full test suite, then
# a scaled-down smoke of the jobs study so the parallel path is exercised
# with jobs>1 even on single-core CI boxes, plus the bench-snapshot
# schema guard and the deterministic soak-totals regression check
# (re-runs the acceptance soak and diffs BENCH_soak.json's totals and
# trajectory; only the machine-dependent perf line is exempt), the
# Chrome-trace export schema guard and the phase-budget regression gate
# (re-runs the bench profile section against BENCH_core.json's
# committed apple-profile/1 shares).
check: lint build test
	APPLE_BENCH_SCALE=0.02 APPLE_JOBS=2 APPLE_BENCH_ONLY=jobs dune exec bench/main.exe
	sh tools/check_bench_schema.sh
	sh tools/check_lint_schema.sh
	sh tools/check_soak_totals.sh
	sh tools/check_trace_schema.sh
	sh tools/check_phase_budgets.sh

clean:
	dune clean
