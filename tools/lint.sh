#!/bin/sh
# DEPRECATED SHIM — the grep/sed style gate that used to live here has
# been replaced by the AST-driven analyzer (lib/lint + tools/apple_lint.ml;
# DESIGN.md §5.10).  The grep version's one-line comment-stripping hack
# missed multi-line comments and its regexes could not see types or
# scopes; the analyzer parses the real parsetree and the comment stream.
#
# This shim keeps `sh tools/lint.sh` callers working by exec'ing the
# analyzer; call it directly for options (--format json, --list-rules):
#
#   dune exec tools/apple_lint.exe -- --help
set -u
cd "$(dirname "$0")/.."
echo "lint.sh: deprecated shim — running the AST analyzer instead" \
     "(dune exec tools/apple_lint.exe --)" >&2
exec dune exec tools/apple_lint.exe -- "$@"
