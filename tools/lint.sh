#!/bin/sh
# Static style gate for lib/ — plain grep/sed, no extra tooling.
#
# Enforced rules:
#   1. No polymorphic compare (`compare` unqualified, or `Stdlib.compare`)
#      in lib/: it silently mis-orders floats (nan), records and custom
#      types, and it boxes.  Use Int.compare / Float.compare /
#      String.compare / a typed comparator.
#   2. No Hashtbl in lib/parallel outside documented sites: the domain
#      pool must stay free of shared mutable tables.  Annotate a reviewed
#      exception with `(* lint: hashtbl *)` on the same line.
#   3. No direct stdout printing in lib/ (print_string, print_endline,
#      Printf.printf, Format.printf, ...): libraries must report through
#      Logs, telemetry, or a caller-supplied formatter.  Annotate a
#      reviewed exception with `(* lint: stdout *)` on the same line.
#   4. Rule 3 holds UNCONDITIONALLY for lib/obs: the measurement plane
#      returns strings (Top.render, Provenance.render) and printing is
#      the CLI's job, so even `(* lint: stdout *)` is rejected there.
#
# Exit status: 0 clean, 1 violations found.

set -u
cd "$(dirname "$0")/.."

fail=0

report() {
  # $1 = rule title, $2 = offending grep -n lines (may be empty)
  if [ -n "$2" ]; then
    echo "lint: $1"
    printf '%s\n' "$2" | sed 's/^/  /'
    fail=1
  fi
}

# Strip OCaml comments well enough for line greps: drop (* ... *) spans
# that open and close on one line (multi-line comment bodies are rare in
# this codebase and prose rarely trips the patterns below anyway).
strip_comments() {
  sed 's/(\*[^*]*\(\*[^)][^*]*\)*\*)//g'
}

bare='(?<![A-Za-z0-9_.'\''])'
after='(?![A-Za-z0-9_'\''])'

# --- rule 1: polymorphic compare ------------------------------------
hits=$(grep -rn --include='*.ml' -P "${bare}compare${after}|Stdlib\\.compare" lib/ \
  | strip_comments \
  | grep -P "${bare}compare${after}|Stdlib\\.compare" || true)
report "polymorphic compare in lib/ (use a typed comparator)" "$hits"

# --- rule 2: Hashtbl in lib/parallel --------------------------------
if [ -d lib/parallel ]; then
  hits=$(grep -rn --include='*.ml' 'Hashtbl' lib/parallel/ \
    | grep -v 'lint: hashtbl' || true)
  report "Hashtbl in lib/parallel (annotate reviewed sites with (* lint: hashtbl *))" "$hits"
fi

# --- rule 3: stdout prints in lib/ ----------------------------------
hits=$(grep -rn --include='*.ml' -P \
  "${bare}(print_string|print_endline|print_newline|print_int|print_float|print_char)${after}|Printf\\.printf|Format\\.printf${after}" \
  lib/ | grep -v 'lint: stdout' || true)
report "stdout printing in lib/ (use Logs/telemetry, or annotate with (* lint: stdout *))" "$hits"

# --- rule 4: no stdout in lib/obs, annotation or not ----------------
# lib/obs renders to strings by contract; the (* lint: stdout *) escape
# hatch does not apply there.
if [ -d lib/obs ]; then
  hits=$(grep -rn --include='*.ml' -P \
    "${bare}(print_string|print_endline|print_newline|print_int|print_float|print_char)${after}|Printf\\.printf|Format\\.printf${after}" \
    lib/obs/ || true)
  report "stdout printing in lib/obs (render to strings; no annotation escape)" "$hits"
fi

if [ "$fail" -eq 0 ]; then
  echo "lint: clean"
fi
exit "$fail"
