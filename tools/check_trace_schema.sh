#!/bin/sh
# Guard: Chrome-trace exports must carry the "apple-trace/1" schema
# identifier that EXPERIMENTS.md documents, and must parse as JSON.
# The trace format is versioned like the bench snapshots — drifting it
# without a doc (and schema bump) fails here.
#
# Usage: check_trace_schema.sh [trace.json]
# With no argument a trace is produced by running the profiler over a
# small table3 workload.
set -u
cd "$(dirname "$0")/.."

trace="${1:-}"
if [ -z "$trace" ]; then
    trace=$(mktemp /tmp/apple_trace.XXXXXX.json)
    trap 'rm -f "$trace"' EXIT
    dune exec bin/apple_cli.exe -- profile --experiment table3 --scale 0.1 \
        --trace-out "$trace" > /dev/null
fi

if [ ! -s "$trace" ]; then
    echo "check_trace_schema: no trace at $trace" >&2
    exit 1
fi

schema=$(sed -n 's/.*"schema": *"\([^"]*\)".*/\1/p' "$trace" | head -n 1)
if [ -z "$schema" ]; then
    echo "check_trace_schema: $trace carries no \"schema\" field" >&2
    exit 1
fi
if ! grep -q "\"$schema\"" EXPERIMENTS.md; then
    echo "check_trace_schema: schema \"$schema\" ($trace) is not documented in EXPERIMENTS.md — document the format there (and bump the schema on incompatible changes)" >&2
    exit 1
fi
for key in '"traceEvents"' '"mode"' '"dropped"'; do
    if ! grep -q "$key" "$trace"; then
        echo "check_trace_schema: $trace lacks the $key field required by $schema" >&2
        exit 1
    fi
done
if command -v python3 > /dev/null 2>&1; then
    if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$trace"; then
        echo "check_trace_schema: $trace is not valid JSON" >&2
        exit 1
    fi
fi

echo "check_trace_schema: OK ($schema)"
