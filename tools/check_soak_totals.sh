#!/bin/sh
# Deterministic-regression guard for BENCH_soak.json.
#
# Re-runs the exact acceptance soak configuration (the one `make
# bench-snapshots` records) and diffs every deterministic field of the
# fresh snapshot — totals, trajectory, fingerprint, violation count —
# against the committed one.  Only the trailing "perf" object is
# machine-dependent, so it is stripped from both sides.
#
# A mismatch means the pipeline's observable behavior changed: either
# fix the regression, or — if the change is intentional — refresh with
# `make bench-snapshots` and review the diff before committing.
#
# Usage: sh tools/check_soak_totals.sh [snapshot.json]
set -e

snapshot=${1:-BENCH_soak.json}
if [ ! -f "$snapshot" ]; then
  echo "check_soak_totals: $snapshot not found (run make bench-snapshots)" >&2
  exit 1
fi

fresh=$(mktemp /tmp/apple_soak_fresh.XXXXXX)
want=$(mktemp /tmp/apple_soak_want.XXXXXX)
got=$(mktemp /tmp/apple_soak_got.XXXXXX)
trap 'rm -f "$fresh" "$want" "$got"' EXIT INT TERM

dune exec bin/apple_cli.exe -- soak -t internet2 --seed 42 --epochs 2000 \
  --schedule examples/soak_internet2.soak --bench-json "$fresh" > /dev/null

# The "perf" object (epochs/sec, live words) is the only
# machine-dependent line; everything else must match bit for bit.
sed '/^  "perf": /d' "$snapshot" > "$want"
sed '/^  "perf": /d' "$fresh" > "$got"

if ! diff -u "$want" "$got"; then
  echo "" >&2
  echo "check_soak_totals: BENCH_soak.json drifted from the current build." >&2
  echo "If the change is intentional, refresh with: make bench-snapshots" >&2
  exit 1
fi
echo "check_soak_totals: deterministic totals and trajectory match $snapshot"
