#!/bin/sh
# Guard: the lint JSON report must carry a "schema" identifier that
# EXPERIMENTS.md documents — the diagnostic format is versioned like
# the bench snapshots, and drifting it without a doc (and schema bump)
# fails here.
#
# Usage: check_lint_schema.sh [report.json]
# With no argument the report is produced by running the analyzer
# (diagnostic failures don't matter here; only the report shape does).
set -u
cd "$(dirname "$0")/.."

report="${1:-}"
if [ -z "$report" ]; then
    report=$(mktemp /tmp/apple_lint.XXXXXX.json)
    trap 'rm -f "$report"' EXIT
    dune exec tools/apple_lint.exe -- --out "$report" > /dev/null || true
fi

if [ ! -s "$report" ]; then
    echo "check_lint_schema: no lint report at $report" >&2
    exit 1
fi

schema=$(sed -n 's/.*"schema": *"\([^"]*\)".*/\1/p' "$report" | head -n 1)
if [ -z "$schema" ]; then
    echo "check_lint_schema: $report carries no \"schema\" field" >&2
    exit 1
fi
if ! grep -q "\"$schema\"" EXPERIMENTS.md; then
    echo "check_lint_schema: schema \"$schema\" ($report) is not documented in EXPERIMENTS.md — document the format there (and bump the schema on incompatible changes)" >&2
    exit 1
fi
for key in '"rules"' '"diagnostics"' '"summary"'; do
    if ! grep -q "$key" "$report"; then
        echo "check_lint_schema: $report lacks the $key block required by $schema" >&2
        exit 1
    fi
done

echo "check_lint_schema: OK ($schema)"
exit 0
