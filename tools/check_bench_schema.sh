#!/bin/sh
# Guard: every committed BENCH_*.json snapshot must carry a "schema"
# identifier that EXPERIMENTS.md documents.  A snapshot whose format
# drifted without a matching doc (and schema bump) fails CI here.
set -u
cd "$(dirname "$0")/.."

fail=0
found=0
for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    found=1
    schema=$(sed -n 's/.*"schema": *"\([^"]*\)".*/\1/p' "$f" | head -n 1)
    if [ -z "$schema" ]; then
        echo "check_bench_schema: $f carries no \"schema\" field" >&2
        fail=1
        continue
    fi
    if ! grep -q "\"$schema\"" EXPERIMENTS.md; then
        echo "check_bench_schema: schema \"$schema\" ($f) is not documented in EXPERIMENTS.md — document the format there (and bump the schema on incompatible changes)" >&2
        fail=1
    fi
done

if [ "$found" = 0 ]; then
    echo "check_bench_schema: no BENCH_*.json snapshots at the repo root" >&2
    fail=1
fi

[ "$fail" = 0 ] && echo "check_bench_schema: OK"
exit $fail
