#!/bin/sh
# Phase-budget regression gate for the committed apple-profile/1
# section of BENCH_core.json.
#
# The bench `profile` section runs a fixed-size gated epoch under the
# causal tracer and records each pipeline phase's share of wall self
# time.  This guard re-runs that section on the current build and
# fails when a phase's fresh share exceeds the committed share by more
# than the slack:
#
#     fresh_share > committed_share * REL + ABS
#
# Shares are ratios of a single run's total, so they are stable where
# absolute seconds are not; the slack absorbs host noise.  Override
# with APPLE_PHASE_REL / APPLE_PHASE_ABS.  On failure either fix the
# regression or — if the shift is intentional — refresh the snapshot
# with `make bench-snapshots` and review the diff.
#
# Usage: sh tools/check_phase_budgets.sh [snapshot.json]
set -u
cd "$(dirname "$0")/.."

snapshot=${1:-BENCH_core.json}
rel=${APPLE_PHASE_REL:-2.0}
abs=${APPLE_PHASE_ABS:-0.10}

if [ ! -f "$snapshot" ]; then
    echo "check_phase_budgets: $snapshot not found (run make bench-snapshots)" >&2
    exit 1
fi
if ! grep -q '"apple-profile/1"' "$snapshot"; then
    echo "check_phase_budgets: $snapshot has no apple-profile/1 section — refresh with make bench-snapshots" >&2
    exit 1
fi

fresh=$(mktemp /tmp/apple_profile.XXXXXX.json)
trap 'rm -f "$fresh"' EXIT
dune exec bench/main.exe -- profile --json "$fresh" > /dev/null

if ! grep -q '"apple-profile/1"' "$fresh"; then
    echo "check_phase_budgets: fresh bench run produced no apple-profile/1 section" >&2
    exit 1
fi

# Phase lines look like:
#   "solve": {"count": 209, "self_seconds": 0.004, "share": 0.241},
phase_shares() {
    sed -n 's/^ *"\([a-z_]*\)": {"count": [0-9]*, "self_seconds": [^,]*, "share": \([0-9.eE+-]*\)}.*/\1 \2/p' "$1"
}

phase_shares "$snapshot" > /tmp/apple_phase_want.$$
phase_shares "$fresh" > /tmp/apple_phase_got.$$
trap 'rm -f "$fresh" /tmp/apple_phase_want.$$ /tmp/apple_phase_got.$$' EXIT

if [ ! -s /tmp/apple_phase_want.$$ ]; then
    echo "check_phase_budgets: could not parse phase shares from $snapshot" >&2
    exit 1
fi

fail=0
while read -r phase want; do
    got=$(awk -v p="$phase" '$1 == p { print $2 }' /tmp/apple_phase_got.$$)
    if [ -z "$got" ]; then
        echo "check_phase_budgets: phase \"$phase\" vanished from the fresh profile" >&2
        fail=1
        continue
    fi
    over=$(awk -v w="$want" -v g="$got" -v r="$rel" -v a="$abs" \
        'BEGIN { print (g > w * r + a) ? 1 : 0 }')
    if [ "$over" = 1 ]; then
        echo "check_phase_budgets: phase \"$phase\" share regressed: committed $want, fresh $got (budget = $want * $rel + $abs)" >&2
        fail=1
    else
        echo "check_phase_budgets: phase \"$phase\" share $got within budget (committed $want)"
    fi
done < /tmp/apple_phase_want.$$

[ "$fail" = 0 ] && echo "check_phase_budgets: OK"
exit $fail
