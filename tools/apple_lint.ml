(* apple_lint — the AST-driven determinism & purity gate.

   Parses every .ml/.mli under lib/ bin/ bench/ tools/ with
   compiler-libs and enforces the Apple_lint.Rule catalog (see
   DESIGN.md §5.10).  Replaces the retired grep gate (tools/lint.sh is
   a deprecated shim that execs this).

     dune exec tools/apple_lint.exe -- [options] [dirs...]

   Exit status: 0 clean, 1 unwaivered diagnostics, 2 usage/IO error. *)

let default_dirs = [ "lib"; "bin"; "bench"; "tools" ]

let find_root () =
  (* Prefer the outermost dune-project so the gate lints the real
     source tree even when invoked from inside _build. *)
  let rec up acc dir =
    let acc =
      if Sys.file_exists (Filename.concat dir "dune-project") then dir :: acc
      else acc
    in
    let parent = Filename.dirname dir in
    if String.equal parent dir then acc else up acc parent
  in
  match up [] (Sys.getcwd ()) with root :: _ -> Some root | [] -> None

let () =
  let module D = Apple_lint.Diagnostic in
  let module R = Apple_lint.Rule in
  let format = ref "text" in
  let root = ref "" in
  let out = ref "" in
  let list_rules = ref false in
  let dirs = ref [] in
  let usage =
    "apple_lint [--format text|json] [--root DIR] [--out FILE] [dirs...]\n\
     AST-driven determinism & purity analyzer (default dirs: lib bin bench \
     tools)."
  in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format on stdout (default text)" );
      ( "--root",
        Arg.Set_string root,
        "DIR analysis root (default: outermost dune-project above cwd)" );
      ( "--out",
        Arg.Set_string out,
        "FILE also write the JSON report here (written even on failure — \
         the CI artifact)" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalog and exit");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  if !list_rules then begin
    List.iter
      (fun (r : R.t) ->
        Printf.printf "%-4s %-17s %-7s %s%s\n" r.id r.name
          (R.severity_to_string r.severity)
          r.summary
          (if R.waivable r then "" else "  [not waivable]"))
      R.catalog;
    exit 0
  end;
  let root =
    if not (String.equal !root "") then !root
    else
      match find_root () with
      | Some r -> r
      | None ->
          prerr_endline "apple_lint: no dune-project above cwd; pass --root";
          exit 2
  in
  let dirs = if !dirs = [] then default_dirs else List.rev !dirs in
  let result =
    try Apple_lint.Analyze.tree ~root ~dirs
    with Sys_error msg ->
      prerr_endline ("apple_lint: " ^ msg);
      exit 2
  in
  let { Apple_lint.Analyze.files; diagnostics } = result in
  if not (String.equal !out "") then begin
    let oc = open_out_bin !out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (D.report_json ~files diagnostics))
  end;
  let report =
    match !format with
    | "json" -> D.report_json ~files diagnostics
    | _ -> D.report_text ~files diagnostics
  in
  print_string report;
  exit (if D.active diagnostics = [] then 0 else 1)
