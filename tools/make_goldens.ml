(* Record the canonical golden outputs under test/goldens/.  Run via
   [make goldens] from the repo root; commit the refreshed files after
   reviewing the diff. *)

let write dir filename render =
  let path = Filename.concat dir filename in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ()));
  Printf.printf "wrote %s\n%!" path

let () =
  let dir = match Sys.argv with [| _; d |] -> d | _ -> "test/goldens" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, render) -> write dir (name ^ ".txt") render)
    Apple_chaos.Goldens.entries;
  write dir "lint_fixtures.json" Apple_lint.Selftest.report_json
